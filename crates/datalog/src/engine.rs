//! Naive and semi-naive bottom-up evaluation, optionally parallel.
//!
//! [`evaluate`] runs semi-naive iteration: in every round each rule is
//! evaluated once per body atom, with that atom restricted to the tuples
//! derived in the previous round (the delta) — a derivation is only
//! attempted if it could not have been made before. [`IncrementalEval`]
//! extends this across calls: it keeps the per-predicate low-water marks
//! between runs, so a caller can insert new facts into an already-saturated
//! database and resume the fixpoint from just those facts, driven by a
//! [`DeltaPlan`] that maps each predicate to the rule positions that can
//! consume it.
//!
//! Each round's work is a list of independent *tasks* (a rule, plus for
//! delta rounds the delta atom and a contiguous chunk of its fresh rows).
//! When the round is large enough, tasks are executed by scoped worker
//! threads, each filling a private derived-tuple buffer; buffers are merged
//! back in task order, so row insertion order — and with it every pinned
//! statistic and spec output — is byte-identical to a sequential run
//! regardless of thread count. [`evaluate_naive`] re-derives everything
//! each round and exists as a differential-testing oracle and as the
//! textbook baseline.
//!
//! Every evaluation is governed (see [`crate::governor`]): entry points
//! return `Result<…, EvalError>`, budgets and cancellation are checked at
//! round boundaries and every few thousand join probes, task panics are
//! caught on the worker and surfaced as [`EvalError::WorkerPanicked`], and
//! any early stop leaves the database in a deterministic prefix of the
//! fixpoint — complete rounds, plus (for the row budget only) a
//! deterministic prefix of the tripping round's merge.

use crate::governor::{EvalError, FaultPlan, Governor, ProbeGuard, Resource};
use crate::program::{register_file, register_file_sized, CompiledRule, HeadSlot, JoinProgram};
use crate::rel::{hash_row, Database, PlanStats};
use crate::rule::{Atom, Rule, Term};
use fundb_term::{Cst, FxHashMap, Pred, Var};
use std::cell::Cell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Counters reported by evaluation. Deliberately identical across thread
/// counts: a parallel run partitions the same probes over workers and sums
/// them back, so stats equality is part of the determinism contract.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint rounds (including the final no-change round).
    pub rounds: usize,
    /// Number of new facts derived (excluding the initial database).
    pub derived: usize,
    /// Number of candidate rows enumerated by body-atom probes (delta
    /// chunks, index buckets, and scans alike).
    pub join_probes: usize,
    /// Number of bound-column selections *fully answered* by an index: the
    /// per-column index when one column is bound, a composite index when
    /// several are. Candidates from these probes differ from answers only
    /// by hash collisions.
    pub index_hits: usize,
    /// Number of bound-column selections where no full-cover index was
    /// available and the probe fell back to the most selective
    /// single-column bucket (immutable callers that cannot build composite
    /// indexes on demand).
    pub index_misses: usize,
    /// Number of magic rules (guard rules plus ground seeds) synthesized by
    /// the goal-directed rewrite, when this run came from [`query_demand`];
    /// zero for plain fixpoint evaluation.
    pub magic_rules: usize,
    /// Total rows across the overlay's magic relations after a
    /// [`query_demand`] evaluation: the size of the demand set the goal
    /// actually touched. Set once after the fixpoint (never inside
    /// workers), so thread-count stats equality is unaffected.
    pub demanded_tuples: usize,
    /// Number of rule plans the adaptive evaluator replaced mid-run after
    /// detecting estimate/observation drift (see
    /// [`IncrementalEval::with_adaptive`]). Decided by the coordinator at
    /// round boundaries only, so identical at every thread count.
    pub replans: usize,
    /// Number of composite-index probes answered by a bloom-filter
    /// rejection: the key was provably absent, so the hash-bucket walk was
    /// skipped. Each such probe still counts as an `index_hits` (the index
    /// fully covered the key); answers are unaffected.
    pub bloom_skips: usize,
    /// Number of times a shared compiled body prefix was reused instead of
    /// re-evaluated: for each binding surviving a prefix shared by `k`
    /// rule programs, `k - 1` re-evaluations are skipped and counted here.
    /// Additive over delta rows, so identical at every thread count.
    pub shared_prefix_hits: usize,
    /// Number of rows tombstoned by retraction maintenance (the target
    /// fact plus every over-deleted consequence), across
    /// [`Database::retract_fact`](crate::retract) calls reporting into
    /// this counter. Retraction runs sequentially on the coordinator, so
    /// the count is identical at every thread count.
    pub retractions: usize,
    /// Number of over-deleted rows restored by the re-derivation pass
    /// because an alternative derivation survived the retraction.
    pub rederived: usize,
}

impl EvalStats {
    /// Accumulates another run's counters into `self`.
    pub fn absorb(&mut self, other: EvalStats) {
        self.rounds += other.rounds;
        self.derived += other.derived;
        self.join_probes += other.join_probes;
        self.index_hits += other.index_hits;
        self.index_misses += other.index_misses;
        self.magic_rules += other.magic_rules;
        self.demanded_tuples += other.demanded_tuples;
        self.replans += other.replans;
        self.bloom_skips += other.bloom_skips;
        self.shared_prefix_hits += other.shared_prefix_hits;
        self.retractions += other.retractions;
        self.rederived += other.rederived;
    }
}

/// Observer of the deterministic commit sequence of a governed fixpoint
/// run, attached via [`IncrementalEval::run_with_sink`]. The durable
/// storage layer implements this to tee every committed row and every
/// completed-round boundary into a write-ahead log.
///
/// All callbacks run on the coordinating thread at round boundaries,
/// after the sequential, task-ordered merge, so the observed sequence is
/// byte-identical at any thread count — the same determinism contract the
/// row store itself keeps. Erroring out of
/// [`round_committed`](RoundSink::round_committed)
/// aborts the run with [`EvalError::WalFailed`]; the in-memory database
/// still holds every completed round.
pub trait RoundSink {
    /// One row was inserted into `pred` by the round's merge. Infallible
    /// by design: implementations buffer IO errors and surface them from
    /// the next [`round_committed`](RoundSink::round_committed).
    fn row_committed(&mut self, pred: Pred, row: &[Cst]);

    /// This round's freshly inserted rows for `pred`: `count` rows of
    /// `arity` cells each, as one contiguous arena slice in insertion
    /// order (`cells` is empty when `arity` is 0). The engine feeds each
    /// round's touched relations in predicate order once the round's
    /// merge completes, so a bulk implementation can copy whole slices;
    /// the default forwards to [`row_committed`](RoundSink::row_committed)
    /// row by row. Per-relation row order — the order that assigns
    /// [`RowId`](crate::RowId)s — is identical at every thread count.
    fn rows_committed(&mut self, pred: Pred, arity: usize, count: usize, cells: &[Cst]) {
        if arity == 0 {
            for _ in 0..count {
                self.row_committed(pred, &[]);
            }
        } else {
            for row in cells.chunks_exact(arity) {
                self.row_committed(pred, row);
            }
        }
    }

    /// A fixpoint round completed and its rows are all in the database
    /// (also called for rounds that derived nothing, including the final
    /// no-change round). `stats` is the run's cumulative counter snapshot
    /// at this boundary — exactly what [`IncrementalEval::run`] would
    /// report if the run stopped here. `Err` aborts the run with
    /// [`EvalError::WalFailed`] carrying the message.
    fn round_committed(&mut self, stats: &EvalStats) -> Result<(), String>;
}

/// The sink type behind sink-less [`IncrementalEval::run`] — never
/// instantiated, it just gives `run_inner`'s generic parameter a concrete
/// type whose (empty, inlined) callbacks compile out of the merge loop.
enum NoopSink {}

impl RoundSink for NoopSink {
    fn row_committed(&mut self, _pred: Pred, _row: &[Cst]) {}
    fn round_committed(&mut self, _stats: &EvalStats) -> Result<(), String> {
        Ok(())
    }
}

/// One mid-run re-plan applied by the adaptive evaluator: before `round`
/// started, `rule`'s compiled programs were replaced by a recompile against
/// live statistics, changing at least one atom order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplanEvent {
    /// The round (1-based, within the [`IncrementalEval::run`] call) that
    /// first executed under the new plan.
    pub round: usize,
    /// Index of the re-planned rule in the caller's rule slice.
    pub rule: usize,
    /// Atom order (body positions) of the first differing program before
    /// the re-plan.
    pub old_order: Vec<usize>,
    /// Atom order of that program after the re-plan.
    pub new_order: Vec<usize>,
}

/// A predicate-argument index over a rule set — for each predicate, the
/// `(rule, body position)` pairs that can consume a new fact of that
/// predicate — plus the rules' compiled join programs. Semi-naive rounds
/// only re-run the positions whose predicate has fresh rows, and each
/// position runs its pre-compiled register program instead of
/// re-interpreting the rule text.
#[derive(Clone, Debug, Default)]
pub struct DeltaPlan {
    by_pred: FxHashMap<Pred, Vec<(u32, u32)>>,
    /// `programs[rule]` = that rule compiled once per role (full + one
    /// per delta atom).
    programs: Vec<CompiledRule>,
    /// Composite-index signatures the programs probe, deduplicated; the
    /// evaluator ensures these exist before every round.
    demands: Vec<(Pred, u64)>,
}

impl DeltaPlan {
    /// Builds the plan for a rule set, compiling every rule.
    pub fn new(rules: &[Rule]) -> DeltaPlan {
        let mut by_pred: FxHashMap<Pred, Vec<(u32, u32)>> = FxHashMap::default();
        for (ri, rule) in rules.iter().enumerate() {
            for (ai, atom) in rule.body.iter().enumerate() {
                by_pred
                    .entry(atom.pred)
                    .or_default()
                    .push((ri as u32, ai as u32));
            }
        }
        let programs: Vec<CompiledRule> = rules.iter().map(CompiledRule::new).collect();
        let mut demands = Vec::new();
        for cr in &programs {
            cr.demands(&mut demands);
        }
        demands.sort_unstable();
        demands.dedup();
        DeltaPlan {
            by_pred,
            programs,
            demands,
        }
    }

    /// Builds the plan with the cardinality cost model: per-rule atom
    /// orders (and with them composite-index demands) are chosen from a
    /// statistics snapshot of `db` taken now, at plan time. The snapshot is
    /// immutable, so the plan — and row derivation order under it — is
    /// fixed for the whole run regardless of how the database grows, which
    /// preserves byte-determinism across thread counts. Rules whose body
    /// predicates are all absent from the snapshot (cold) compile with the
    /// same greedy order as [`DeltaPlan::new`].
    pub fn planned(rules: &[Rule], db: &Database) -> DeltaPlan {
        let stats = db.plan_stats();
        let mut by_pred: FxHashMap<Pred, Vec<(u32, u32)>> = FxHashMap::default();
        for (ri, rule) in rules.iter().enumerate() {
            for (ai, atom) in rule.body.iter().enumerate() {
                by_pred
                    .entry(atom.pred)
                    .or_default()
                    .push((ri as u32, ai as u32));
            }
        }
        let programs: Vec<CompiledRule> = rules
            .iter()
            .map(|r| CompiledRule::with_stats(r, &stats))
            .collect();
        let mut demands = Vec::new();
        for cr in &programs {
            cr.demands(&mut demands);
        }
        demands.sort_unstable();
        demands.dedup();
        DeltaPlan {
            by_pred,
            programs,
            demands,
        }
    }

    /// The `(rule, body position)` pairs that consume facts of `p`.
    pub fn positions(&self, p: Pred) -> &[(u32, u32)] {
        self.by_pred.get(&p).map_or(&[], Vec::as_slice)
    }

    /// The compiled program a task runs: the rule's full program, or its
    /// per-delta program when the task restricts a body atom to a delta
    /// range.
    pub(crate) fn program(&self, rule: u32, delta_atom: Option<u32>) -> &JoinProgram {
        let cr = &self.programs[rule as usize];
        match delta_atom {
            None => &cr.full,
            Some(ai) => &cr.per_delta[ai as usize],
        }
    }

    /// Builds every composite index the compiled programs will probe (for
    /// relations that exist in `db`; re-invoked each round as derived
    /// relations appear).
    pub(crate) fn ensure_indexes(&self, db: &mut Database) {
        for &(p, sig) in &self.demands {
            db.ensure_composite(p, sig);
        }
    }
}

/// Delta rows a round must see before parallel execution pays for the
/// thread scaffolding; smaller rounds run sequentially on the caller's
/// thread.
pub const DEFAULT_MIN_PARALLEL_ROWS: usize = 4096;

/// Threads the evaluator uses when none are configured explicitly: the
/// `FUNDB_THREADS` environment variable if set to a positive integer,
/// otherwise the machine's available parallelism.
pub fn default_threads() -> usize {
    static CACHE: OnceLock<usize> = OnceLock::new();
    *CACHE.get_or_init(|| {
        match std::env::var("FUNDB_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
        {
            Some(n) if n >= 1 => n,
            _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
        }
    })
}

/// A resumable semi-naive fixpoint: owns the low-water marks of one
/// database, so [`IncrementalEval::run`] can be called repeatedly as the
/// caller injects new facts, re-deriving only their consequences.
#[derive(Clone, Debug)]
pub struct IncrementalEval {
    marks: FxHashMap<Pred, usize>,
    /// Slot-reuse epoch each mark was taken under (see
    /// [`Relation::reuse_epoch`](crate::rel::Relation::reuse_epoch)): a
    /// relation whose epoch moved had rows revived below the mark. The
    /// relation's reclaim log (consumed through `reclaim_cursors`) says
    /// exactly which slots, and those rows are re-fed as single-row
    /// delta ranges; only a compaction (which renumbers ids and clears
    /// the log, tracked via `compaction_marks`) still resets the mark
    /// and re-scans the whole relation.
    epochs: FxHashMap<Pred, u64>,
    /// Cursor into each relation's reclaimed-slot log: entries past the
    /// cursor are rows revived below the mark since the last run.
    reclaim_cursors: FxHashMap<Pred, usize>,
    /// Compaction counter each cursor was taken under; a moved value
    /// invalidates the recorded ids and cursor.
    compaction_marks: FxHashMap<Pred, u64>,
    started: bool,
    /// Worker threads per round; `None` defers to [`default_threads`].
    threads: Option<usize>,
    /// Rounds with fewer delta rows than this run sequentially.
    min_parallel_rows: usize,
    /// Budgets, cancellation and fault injection for every run.
    governor: Governor,
    /// Adaptive execution (mid-run re-planning + shared-prefix groups).
    adaptive: bool,
    /// Per-rule plan overrides installed by mid-run re-plans; `None`
    /// entries fall through to the `DeltaPlan`'s compiled programs.
    overrides: Vec<Option<CompiledRule>>,
    /// The statistics snapshot the current plans were estimated against
    /// (plan-time stats until the first re-plan, live stats after).
    est_stats: Option<PlanStats>,
    /// Memoized per-delta-row probe estimates keyed `(rule, delta atom)`;
    /// cleared whenever `est_stats` or an override changes.
    est_cache: FxHashMap<(u32, u32), f64>,
    /// Rules whose observed probes drifted outside the estimate band last
    /// round; re-planned (deterministically, coordinator-only) at the next
    /// round boundary.
    drifted: Vec<u32>,
    /// Every re-plan applied so far, in application order.
    replan_log: Vec<ReplanEvent>,
    /// Scratch for the per-round sink hand-off (relations the round
    /// touched, in predicate order) — reused so sink-attached runs don't
    /// allocate per round.
    sink_touched: Vec<Pred>,
}

impl Default for IncrementalEval {
    fn default() -> Self {
        IncrementalEval {
            marks: FxHashMap::default(),
            epochs: FxHashMap::default(),
            reclaim_cursors: FxHashMap::default(),
            compaction_marks: FxHashMap::default(),
            started: false,
            threads: None,
            min_parallel_rows: DEFAULT_MIN_PARALLEL_ROWS,
            governor: Governor::default(),
            adaptive: true,
            overrides: Vec::new(),
            est_stats: None,
            est_cache: FxHashMap::default(),
            drifted: Vec::new(),
            replan_log: Vec::new(),
            sink_touched: Vec::new(),
        }
    }
}

impl IncrementalEval {
    /// A fresh evaluation (first `run` performs the full initial round).
    pub fn new() -> IncrementalEval {
        IncrementalEval::default()
    }

    /// Pins the worker-thread count (1 = always sequential). Builder form.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.set_threads(Some(threads));
        self
    }

    /// Sets the worker-thread count; `None` restores the
    /// [`default_threads`] resolution (`FUNDB_THREADS` / machine cores).
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads.map(|n| n.max(1));
    }

    /// Lowers/raises the sequential-fallback threshold. Builder form;
    /// mostly for tests that want to force the parallel path on tiny data.
    pub fn with_parallel_threshold(mut self, min_rows: usize) -> Self {
        self.min_parallel_rows = min_rows;
        self
    }

    /// The thread count this evaluator will use.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(default_threads)
    }

    /// Pins the governor that budgets every subsequent run. Builder form.
    pub fn with_governor(mut self, governor: Governor) -> Self {
        self.governor = governor;
        self
    }

    /// Replaces the governor (budget counters carry over *within* a
    /// governor, so handing several evaluators clones of one governor
    /// bounds their combined work).
    pub fn set_governor(&mut self, governor: Governor) {
        self.governor = governor;
    }

    /// The governor in effect (e.g. to clone its cancellation token).
    pub fn governor(&self) -> &Governor {
        &self.governor
    }

    /// Enables/disables adaptive execution (on by default): live-stats
    /// re-planning at round boundaries and shared-prefix task groups.
    /// `false` reproduces the planned-once PR 6/7 execution exactly.
    /// Builder form.
    pub fn with_adaptive(mut self, adaptive: bool) -> Self {
        self.set_adaptive(adaptive);
        self
    }

    /// Setter form of [`IncrementalEval::with_adaptive`].
    pub fn set_adaptive(&mut self, adaptive: bool) {
        self.adaptive = adaptive;
    }

    /// The re-plans applied so far, across every [`IncrementalEval::run`]
    /// call on this evaluator, in application order.
    pub fn replan_history(&self) -> &[ReplanEvent] {
        &self.replan_log
    }

    /// Marks every current row of `db` as already processed: the next
    /// [`IncrementalEval::run`] treats only rows inserted (or revived)
    /// after this call as the delta. [`Database::update_fact`]
    /// (crate::rel::Database::update_fact) uses this to re-derive from
    /// just the replacement fact once retraction has restored the
    /// fixpoint, instead of re-running the initial full round.
    pub fn prime_marks(&mut self, db: &Database) {
        self.started = true;
        for (p, rel) in db.iter() {
            self.marks.insert(p, rel.len());
            self.epochs.insert(p, rel.reuse_epoch());
            self.reclaim_cursors.insert(p, rel.reclaimed_log().len());
            self.compaction_marks.insert(p, rel.compactions());
        }
    }

    /// Runs the fixpoint to saturation and returns this run's counters.
    ///
    /// The first call evaluates every rule over the whole database (and
    /// fires empty-body rules); later calls treat rows inserted since the
    /// previous call as the delta and only re-run the plan positions that
    /// can see them. The caller must pass the same `rules`/`plan` pair on
    /// every call.
    ///
    /// On `Err`, the database holds a deterministic prefix of the fixpoint:
    /// every completed round, plus — for [`Resource::Rows`] only — the
    /// first `max_rows` rows of the tripping round's (sequential,
    /// task-ordered) merge. `partial` describes exactly those committed
    /// rows, so error results are byte-identical at any thread count.
    pub fn run(
        &mut self,
        db: &mut Database,
        rules: &[Rule],
        plan: &DeltaPlan,
    ) -> Result<EvalStats, EvalError> {
        self.run_inner::<NoopSink>(db, rules, plan, None)
    }

    /// [`IncrementalEval::run`] with a [`RoundSink`] observing the commit
    /// sequence: every inserted row (in deterministic merge order) and
    /// every completed-round boundary. The durable storage layer uses this
    /// to write its WAL at exactly the governor's checkpoint boundaries,
    /// so recovery always replays onto a completed-round prefix.
    ///
    /// Error returns never report a round the sink was not told about: a
    /// budget trip, fault, or panic surfaces *before* the tripping round's
    /// marker, and a sink failure surfaces as [`EvalError::WalFailed`]. The
    /// one asymmetry is [`Resource::Rows`](crate::Resource::Rows), whose
    /// deterministic partial merge stays in the in-memory database but is
    /// never handed to the sink (rows reach the sink only when their round
    /// completes) — a recovered store drops exactly that partial tail.
    /// The sink parameter is generic (not `&mut dyn`) so a concrete sink's
    /// per-row callback inlines into the merge loop — the WAL encoder runs
    /// on every derived row, and virtual dispatch there is measurable
    /// against the E17 ≤5% overhead budget. `dyn RoundSink` still works
    /// (`S: ?Sized`).
    pub fn run_with_sink<S: RoundSink + ?Sized>(
        &mut self,
        db: &mut Database,
        rules: &[Rule],
        plan: &DeltaPlan,
        sink: &mut S,
    ) -> Result<EvalStats, EvalError> {
        self.run_inner(db, rules, plan, Some(sink))
    }

    fn run_inner<S: RoundSink + ?Sized>(
        &mut self,
        db: &mut Database,
        rules: &[Rule],
        plan: &DeltaPlan,
        mut sink: Option<&mut S>,
    ) -> Result<EvalStats, EvalError> {
        let threads = self.effective_threads();
        let gov = self.governor.clone();
        let fault = *gov.fault();
        let mut stats = EvalStats::default();
        let mut first = !self.started;
        self.started = true;
        // Slot-reuse check: a public insert that reclaimed a tombstoned
        // slot put a live row *below* the dense high-water mark, where
        // the contiguous mark..len delta cannot see it. The relation logs
        // exactly which slots were reclaimed, so those rows are re-fed as
        // single-row delta ranges in the run's first round (`pending`)
        // instead of rescanning the whole relation — churn (retract +
        // re-insert) stays O(cone), not O(database). Compaction renumbers
        // ids and clears the log, so a moved compaction counter falls
        // back to the conservative mark-to-zero full rescan. Coordinator-
        // only and data-driven, so thread counts cannot influence it.
        let mut pending: FxHashMap<Pred, Vec<u32>> = FxHashMap::default();
        if !first {
            for (p, rel) in db.iter() {
                let epoch = rel.reuse_epoch();
                let compactions = rel.compactions();
                let log_len = rel.reclaimed_log().len();
                let prev_epoch = self.epochs.insert(p, epoch);
                let prev_comp = self.compaction_marks.insert(p, compactions);
                let cursor = self
                    .reclaim_cursors
                    .insert(p, log_len)
                    .unwrap_or(log_len)
                    .min(log_len);
                if prev_comp.is_some_and(|c| c != compactions) {
                    self.marks.insert(p, 0);
                } else if prev_epoch.is_some_and(|e| e != epoch) {
                    let mark = self.marks.get(&p).copied().unwrap_or(0);
                    // Ids at or above the mark are already covered by the
                    // contiguous range; sort + dedup keeps the task list
                    // deterministic even if a slot churned twice.
                    let mut ids: Vec<u32> = rel.reclaimed_log()[cursor..]
                        .iter()
                        .copied()
                        .filter(|&id| (id as usize) < mark)
                        .collect();
                    ids.sort_unstable();
                    ids.dedup();
                    if !ids.is_empty() {
                        pending.insert(p, ids);
                    }
                }
            }
        }
        if self.adaptive {
            if self.overrides.len() < rules.len() {
                self.overrides.resize_with(rules.len(), || None);
            }
            if self.est_stats.is_none() {
                // Baseline for drift detection: the same kind of snapshot
                // the plan was compiled from. The first re-plan replaces it
                // with a live (delta-aware) snapshot.
                let est = db.plan_stats();
                // Round-one planning pass: a greedy-compiled plan adopts
                // the cost model's order wherever the snapshot says it is
                // strictly better (the hysteresis margin lives inside
                // `cost_order`). Plans already compiled from equivalent
                // statistics recompile to themselves, so this is a no-op
                // for `DeltaPlan::planned` callers. Coordinator-only and
                // driven purely by the snapshot: thread counts cannot
                // influence it.
                for (ri, rule) in rules.iter().enumerate() {
                    let recompiled = CompiledRule::with_stats(rule, &est);
                    if let Some((old_order, new_order)) =
                        changed_orders(&plan.programs[ri], &recompiled)
                    {
                        stats.replans += 1;
                        self.replan_log.push(ReplanEvent {
                            round: 1,
                            rule: ri,
                            old_order,
                            new_order,
                        });
                        self.overrides[ri] = Some(recompiled);
                    }
                }
                self.est_stats = Some(est);
            }
        }
        // Shared-prefix grouping is disabled under `panic_task` faults: the
        // fault addresses one deterministic task index, and a group would
        // co-execute that task with innocent siblings.
        let grouping = self.adaptive && fault.panic_task.is_none();
        loop {
            // Round boundary: `db` holds exactly the committed rounds and
            // `stats` describes them, so this snapshot is what any early
            // stop below reports as `partial`.
            let committed = stats;
            if let Err(resource) = gov.begin_round() {
                gov.abort_round();
                return Err(EvalError::BudgetExhausted {
                    resource,
                    partial: committed,
                });
            }
            if let Some(limit) = gov.max_bytes() {
                if db.approx_bytes() > limit {
                    gov.abort_round();
                    return Err(EvalError::BudgetExhausted {
                        resource: Resource::Bytes,
                        partial: committed,
                    });
                }
            }
            // Mid-run re-planning. Rules flagged as drifted at the end of
            // the previous round are recompiled against *live* statistics
            // (current cardinalities plus the delta sketches) before this
            // round's tasks are built. Everything here runs on the
            // coordinator from round-boundary state only — worker
            // scheduling can't influence it — so the decisions, and with
            // them row/RowId order, stay byte-identical at any thread
            // count. A re-plan is also a budget checkpoint.
            if self.adaptive && !self.drifted.is_empty() {
                if let Err(resource) = gov.checkpoint() {
                    gov.abort_round();
                    return Err(EvalError::BudgetExhausted {
                        resource,
                        partial: committed,
                    });
                }
                let marks = &self.marks;
                let live = db.plan_stats_live(|p| marks.get(&p).copied().unwrap_or(0));
                for ri in std::mem::take(&mut self.drifted) {
                    let recompiled = CompiledRule::with_stats(&rules[ri as usize], &live);
                    let current = self.overrides[ri as usize]
                        .as_ref()
                        .unwrap_or(&plan.programs[ri as usize]);
                    if let Some((old_order, new_order)) = changed_orders(current, &recompiled) {
                        stats.replans += 1;
                        self.replan_log.push(ReplanEvent {
                            round: stats.rounds + 1,
                            rule: ri as usize,
                            old_order,
                            new_order,
                        });
                        self.overrides[ri as usize] = Some(recompiled);
                    }
                }
                self.est_stats = Some(live);
                self.est_cache.clear();
            }
            stats.rounds += 1;
            // Composite indexes demanded by the compiled programs must
            // exist before workers share the database immutably; inserts
            // keep them current within and after the round. Overriding
            // plans may demand signatures the base plan never compiled.
            plan.ensure_indexes(db);
            for ov in self.overrides.iter().flatten() {
                let mut extra = Vec::new();
                ov.demands(&mut extra);
                for (p, sig) in extra {
                    db.ensure_composite(p, sig);
                }
            }
            let mut tasks: Vec<Task> = Vec::new();
            // Total delta rows the round will scan, for the parallel/
            // sequential decision (first rounds count whole relations).
            let mut round_rows = 0usize;

            if first {
                for (ri, rule) in rules.iter().enumerate() {
                    tasks.push(Task {
                        rule: ri as u32,
                        delta: None,
                    });
                    round_rows += rule
                        .body
                        .first()
                        .and_then(|a| db.relation(a.pred))
                        .map_or(0, |r| r.len());
                }
            } else {
                // Only the rule positions whose predicate has fresh rows
                // (past the mark, or reclaimed below it).
                let mut work: Vec<(u32, u32)> = Vec::new();
                for (p, rel) in db.iter() {
                    if rel.len() > self.marks.get(&p).copied().unwrap_or(0)
                        || pending.contains_key(&p)
                    {
                        work.extend_from_slice(plan.positions(p));
                    }
                }
                if work.is_empty() {
                    // Nothing to do is itself a completed round: mark it so
                    // a recovered run reports the same `rounds` counter.
                    if let Some(s) = sink.as_mut() {
                        if let Err(detail) = s.round_committed(&stats) {
                            return Err(EvalError::WalFailed { detail });
                        }
                    }
                    return Ok(stats);
                }
                work.sort_unstable();
                work.dedup();
                for (ri, ai) in work {
                    let pred = rules[ri as usize].body[ai as usize].pred;
                    let start = self.marks.get(&pred).copied().unwrap_or(0);
                    let end = db.relation(pred).map_or(start, |r| r.len());
                    // Reclaimed slots below the mark: one single-row range
                    // each, ahead of the contiguous tail, so the task list
                    // (and with it merge order and RowIds) stays
                    // deterministic.
                    if let Some(ids) = pending.get(&pred) {
                        for &id in ids {
                            round_rows += 1;
                            tasks.push(Task {
                                rule: ri,
                                delta: Some(DeltaRange {
                                    atom: ai,
                                    start: id as usize,
                                    end: id as usize + 1,
                                }),
                            });
                        }
                    }
                    if end == start {
                        continue;
                    }
                    round_rows += end - start;
                    // The compiled per-delta program always runs the delta
                    // atom outermost, so splitting the range partitions the
                    // work exactly for *any* body position (under the PR 2
                    // interpreter only a leading delta atom could chunk).
                    if end - start >= 2 * MIN_CHUNK_ROWS {
                        let chunks = (threads * TASKS_PER_THREAD)
                            .min((end - start).div_ceil(MIN_CHUNK_ROWS))
                            .max(1);
                        let size = (end - start).div_ceil(chunks);
                        let mut lo = start;
                        while lo < end {
                            let hi = (lo + size).min(end);
                            tasks.push(Task {
                                rule: ri,
                                delta: Some(DeltaRange {
                                    atom: ai,
                                    start: lo,
                                    end: hi,
                                }),
                            });
                            lo = hi;
                        }
                    } else {
                        tasks.push(Task {
                            rule: ri,
                            delta: Some(DeltaRange {
                                atom: ai,
                                start,
                                end,
                            }),
                        });
                    }
                }
            }

            // Deterministic global task indexes for this round: base +
            // position in `tasks` — independent of which worker actually
            // executes a task, so `panic_task` faults are reproducible.
            let base = gov.reserve_tasks(tasks.len());
            let view = PlanView {
                plan,
                overrides: &self.overrides,
            };
            // Per-rule probe estimates for this round's delta work — the
            // drift detector's expectation. Memoized per (rule, delta atom)
            // until stats or plans change.
            let mut round_est: FxHashMap<u32, f64> = FxHashMap::default();
            if self.adaptive && !first {
                for task in &tasks {
                    if let Some(d) = task.delta {
                        let key = (task.rule, d.atom);
                        let per = match self.est_cache.get(&key) {
                            Some(&cached) => cached,
                            None => {
                                let est_stats = self
                                    .est_stats
                                    .as_ref()
                                    .expect("adaptive run initializes est_stats");
                                let per = view
                                    .program(task.rule, Some(d.atom))
                                    .estimate_probes_per_delta_row(est_stats);
                                self.est_cache.insert(key, per);
                                per
                            }
                        };
                        *round_est.entry(task.rule).or_insert(0.0) +=
                            (d.end - d.start) as f64 * per;
                    }
                }
            }
            let groups = build_groups(&view, &tasks, grouping);
            let parallel =
                threads > 1 && tasks.len() > 1 && round_rows >= self.min_parallel_rows.max(1);
            let round = if parallel {
                run_tasks_parallel(db, &view, &tasks, &groups, threads, base, &gov, &fault)
            } else {
                run_tasks_sequential(db, &view, &tasks, &groups, base, &gov, &fault)
            };
            let results = match round {
                Ok(results) => results,
                // Mid-round failure: the round's buffer is discarded whole,
                // leaving the database at the last completed round — the
                // only truncation point that is identical no matter which
                // worker tripped first.
                Err(abort) => return Err(abort.into_eval_error(committed)),
            };
            let mut buffer = DerivedBuffer::default();
            let mut observed: FxHashMap<u32, usize> = FxHashMap::default();
            for (i, buf, st) in results {
                if self.adaptive && !first {
                    *observed.entry(tasks[i].rule).or_insert(0) += st.join_probes;
                }
                buffer.absorb(buf);
                stats.absorb(st);
            }
            // Drift decision for the next round boundary: observed probes
            // per rule outside the estimate band. Both sides are sums over
            // delta rows (chunking-invariant), so the flagged set is
            // identical at every thread count.
            if self.adaptive {
                self.drifted.clear();
                for (&ri, &est) in &round_est {
                    let obs = observed.get(&ri).copied().unwrap_or(0);
                    if obs >= DRIFT_MIN_PROBES
                        && ((obs as f64) > est * DRIFT_FACTOR || (obs as f64) * DRIFT_FACTOR < est)
                    {
                        self.drifted.push(ri);
                    }
                }
                self.drifted.sort_unstable();
            }

            // Advance marks to the end of the pre-insertion rows, and
            // remember the slot-reuse epoch each mark was taken under.
            // The reclaimed rows were consumed by this round's tasks;
            // later rounds see only the contiguous mark..len delta
            // (derived inserts never reclaim slots).
            for (p, rel) in db.iter() {
                self.marks.insert(p, rel.len());
                self.epochs.insert(p, rel.reuse_epoch());
                self.reclaim_cursors.insert(p, rel.reclaimed_log().len());
                self.compaction_marks.insert(p, rel.compactions());
            }
            pending.clear();

            let mut changed = false;
            for (p, t) in buffer.iter() {
                if db.insert_derived(p, t) {
                    changed = true;
                    stats.derived += 1;
                    if !gov.note_row() {
                        // Exactly `max_rows` rows were inserted: the merge
                        // is sequential and in task order, so this cut is
                        // a deterministic prefix of the unbudgeted
                        // insertion sequence at any thread count.
                        return Err(EvalError::BudgetExhausted {
                            resource: Resource::Rows,
                            partial: stats,
                        });
                    }
                }
            }
            // Round boundary: the merge is complete and `stats` describes
            // exactly the committed state, so this is the durable-log
            // checkpoint. The round's inserted rows are handed over as
            // contiguous arena slices, relation by relation in predicate
            // order — rows land in their relations before the sink sees
            // them, and per-relation order is the merge's (sequential,
            // deterministic) insertion order, so the observed sequence is
            // byte-identical at any thread count. A sink failure aborts
            // the run *after* the in-memory commit — the database keeps
            // the round, the log ends at the previous marker.
            if let Some(s) = sink.as_mut() {
                let marks = &self.marks;
                let touched = &mut self.sink_touched;
                touched.clear();
                touched.extend(
                    db.iter()
                        .filter(|&(p, rel)| rel.len() > marks.get(&p).copied().unwrap_or(0))
                        .map(|(p, _)| p),
                );
                touched.sort_unstable();
                for &p in touched.iter() {
                    let rel = db.relation(p).expect("touched relation exists");
                    let from = marks.get(&p).copied().unwrap_or(0);
                    s.rows_committed(p, rel.arity(), rel.len() - from, rel.cells_from(from));
                }
                if let Err(detail) = s.round_committed(&stats) {
                    return Err(EvalError::WalFailed { detail });
                }
            }
            first = false;
            if !changed {
                return Ok(stats);
            }
        }
    }
}

/// Minimum rows per delta chunk — below this the per-task overhead beats
/// the parallelism.
const MIN_CHUNK_ROWS: usize = 512;

/// Chunks per worker thread, for load balancing under the work-stealing
/// cursor (rule firings are skewed: some chunks derive nothing).
const TASKS_PER_THREAD: usize = 4;

/// One unit of round work: a rule, optionally restricted to a range of
/// delta rows at one body atom.
#[derive(Copy, Clone, Debug)]
struct Task {
    rule: u32,
    delta: Option<DeltaRange>,
}

/// Delta restriction of a task: body atom `atom` ranges over dense row
/// indexes `start..end` of its relation.
#[derive(Copy, Clone, Debug)]
struct DeltaRange {
    atom: u32,
    start: usize,
    end: usize,
}

/// Flat buffer of derived head tuples: one `(pred, offset, arity)` entry
/// per firing over a shared constant arena, so a round allocates O(1)
/// buffers instead of one `Box<[Cst]>` per derived row.
#[derive(Debug, Default)]
struct DerivedBuffer {
    heads: Vec<(Pred, u32, u32)>,
    data: Vec<Cst>,
}

impl DerivedBuffer {
    // Invariant (all three `expect`s below): row offsets are stored as
    // `u32` throughout the row-store; an arena outgrowing `u32::MAX` cells
    // cannot be represented, so trap loudly instead of truncating offsets.
    // A byte budget (`Budget::max_bytes`) trips orders of magnitude before
    // this point on any governed run.

    /// Grounds a compiled head template under the register file directly
    /// into the arena.
    fn push_slots(&mut self, pred: Pred, head: &[HeadSlot], regs: &[Cst]) {
        let start = u32::try_from(self.data.len()).expect("derived buffer overflow");
        for s in head {
            self.data.push(match s {
                HeadSlot::Const(c) => *c,
                HeadSlot::Reg(r) => regs[*r as usize],
                HeadSlot::Unbound => panic!("unsafe rule: head variable unbound"),
            });
        }
        self.heads.push((pred, start, head.len() as u32));
    }

    /// Grounds `rule`'s head under `subst` directly into the arena (the
    /// interpreted oracle's emit path).
    fn push_head(&mut self, rule: &Rule, subst: &FxHashMap<Var, Cst>) {
        let start = u32::try_from(self.data.len()).expect("derived buffer overflow");
        for t in &rule.head.args {
            self.data.push(match t {
                Term::Const(c) => *c,
                Term::Var(v) => *subst.get(v).expect("unsafe rule: head variable unbound"),
            });
        }
        self.heads
            .push((rule.head.pred, start, rule.head.args.len() as u32));
    }

    /// Appends another buffer's rows after this one's (the deterministic
    /// task-order merge).
    fn absorb(&mut self, other: DerivedBuffer) {
        let shift = u32::try_from(self.data.len()).expect("derived buffer overflow");
        self.data.extend_from_slice(&other.data);
        self.heads
            .extend(other.heads.iter().map(|&(p, s, a)| (p, s + shift, a)));
    }

    /// Derived rows in firing order.
    fn iter(&self) -> impl Iterator<Item = (Pred, &[Cst])> {
        self.heads
            .iter()
            .map(|&(p, s, a)| (p, &self.data[s as usize..(s + a) as usize]))
    }
}

/// Why a round stopped before all of its tasks completed. The round's
/// buffer is discarded in either case; `into_eval_error` attaches the
/// last-committed stats snapshot for resource trips.
enum RoundAbort {
    Resource(Resource),
    Panic { task: usize, payload: String },
}

impl RoundAbort {
    fn into_eval_error(self, committed: EvalStats) -> EvalError {
        match self {
            RoundAbort::Resource(resource) => EvalError::BudgetExhausted {
                resource,
                partial: committed,
            },
            RoundAbort::Panic { task, payload } => EvalError::WorkerPanicked { task, payload },
        }
    }
}

/// Best-effort string form of a `catch_unwind` payload.
fn panic_payload(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Trips the `panic_task` fault when `index` (the deterministic global
/// task index) matches. Inert in production: the plan's field is `None`.
fn inject_task_fault(fault: &FaultPlan, index: usize) {
    if fault.panic_task == Some(index) {
        panic!("injected fault: panic_task:{index}");
    }
}

/// Minimum observed probes before a rule can be flagged as drifted —
/// below this the round's absolute cost is noise and a re-plan would be
/// pure overhead.
const DRIFT_MIN_PROBES: usize = 256;

/// Estimate/observation tolerance: observed probes outside
/// `[estimate / DRIFT_FACTOR, estimate * DRIFT_FACTOR]` flag the rule for
/// re-planning at the next round boundary.
const DRIFT_FACTOR: f64 = 4.0;

/// The first atom-order difference between two compiles of one rule, as
/// `(old, new)` body-position orders (full program first, then per-delta
/// programs); `None` when every program agrees — in which case a re-plan
/// would be a no-op and is not installed.
fn changed_orders(old: &CompiledRule, new: &CompiledRule) -> Option<(Vec<usize>, Vec<usize>)> {
    let (o, n) = (old.full.atom_order(), new.full.atom_order());
    if o != n {
        return Some((o, n));
    }
    for (op, np) in old.per_delta.iter().zip(&new.per_delta) {
        let (o, n) = (op.atom_order(), np.atom_order());
        if o != n {
            return Some((o, n));
        }
    }
    None
}

/// A [`DeltaPlan`] seen through the adaptive evaluator's per-rule
/// overrides: rules re-planned mid-run resolve to their recompiled
/// programs, everything else falls through to the base plan.
#[derive(Clone, Copy)]
struct PlanView<'a> {
    plan: &'a DeltaPlan,
    overrides: &'a [Option<CompiledRule>],
}

impl PlanView<'_> {
    /// The compiled program a task runs (see [`DeltaPlan::program`]).
    fn program(&self, rule: u32, delta_atom: Option<u32>) -> &JoinProgram {
        if let Some(Some(cr)) = self.overrides.get(rule as usize) {
            return match delta_atom {
                None => &cr.full,
                Some(ai) => &cr.per_delta[ai as usize],
            };
        }
        self.plan.program(rule, delta_atom)
    }
}

/// Tasks co-executed over one evaluation of a shared compiled prefix.
/// `members` index into the round's task list, ascending; the first member
/// owns the prefix (its probes and the group's `shared_prefix_hits` land in
/// its stats, keeping per-task attribution additive over delta rows and
/// therefore thread-count-invariant). Singleton groups run the plain
/// per-task path; `shared_len` is 0 for them.
struct TaskGroup {
    members: Vec<u32>,
    shared_len: usize,
}

/// Greedily groups tasks that scan the *same* delta range (or are all
/// full-relation tasks) through structurally identical leading ops. Group
/// composition is a pure function of the round's task list and the
/// installed programs — never of worker scheduling — and chunk boundaries
/// are identical for every position over one predicate's range, so the
/// per-delta-row fan-out (and with it rows and stats) is identical at any
/// thread count. `grouping == false` yields all-singleton groups (the
/// planned-once execution shape).
fn build_groups(view: &PlanView<'_>, tasks: &[Task], grouping: bool) -> Vec<TaskGroup> {
    if !grouping {
        return (0..tasks.len() as u32)
            .map(|i| TaskGroup {
                members: vec![i],
                shared_len: 0,
            })
            .collect();
    }
    let mut grouped = vec![false; tasks.len()];
    let mut groups = Vec::new();
    for i in 0..tasks.len() {
        if grouped[i] {
            continue;
        }
        grouped[i] = true;
        let ti = tasks[i];
        let pi = view.program(ti.rule, ti.delta.map(|d| d.atom));
        let key = ti.delta.map(|d| (d.start, d.end));
        let mut members = vec![i as u32];
        let mut shared = usize::MAX;
        for (j, tj) in tasks.iter().enumerate().skip(i + 1) {
            if grouped[j] || tj.delta.map(|d| (d.start, d.end)) != key {
                continue;
            }
            let pj = view.program(tj.rule, tj.delta.map(|d| d.atom));
            let l = pi.shared_prefix_len(pj);
            if l >= 1 {
                grouped[j] = true;
                members.push(j as u32);
                shared = shared.min(l);
            }
        }
        let shared_len = if members.len() == 1 { 0 } else { shared };
        groups.push(TaskGroup {
            members,
            shared_len,
        });
    }
    groups
}

/// Runs one task sequentially into `out`: executes the task's compiled
/// program over a freshly-zeroed register file.
fn run_task(
    db: &Database,
    view: &PlanView<'_>,
    task: Task,
    guard: &ProbeGuard<'_>,
    out: &mut DerivedBuffer,
    stats: &mut EvalStats,
) -> Result<(), Resource> {
    let prog = view.program(task.rule, task.delta.map(|d| d.atom));
    let mut regs = register_file(prog);
    let range = task.delta.map(|d| (d.start, d.end));
    let pred = prog.head_pred();
    prog.execute(db, range, &mut regs, guard, stats, &mut |head, regs| {
        out.push_slots(pred, head, regs);
    })
}

/// Executes one task group, returning `(task index, buffer, stats)` per
/// member. Singleton groups run [`run_task`]; larger groups evaluate the
/// shared prefix once through the first member's program and resume every
/// member's continuation per surviving binding — each member's buffer
/// receives exactly the rows its solo task would have produced, in the
/// same order, so the task-order merge is unchanged. Panic/fault isolation
/// matches the per-task path (`task` in the abort is the member whose
/// continuation — or, between continuations, whose prefix — was running).
fn run_group(
    db: &Database,
    view: &PlanView<'_>,
    tasks: &[Task],
    group: &TaskGroup,
    base: usize,
    guard: &ProbeGuard<'_>,
    fault: &FaultPlan,
) -> Result<Vec<(usize, DerivedBuffer, EvalStats)>, RoundAbort> {
    if group.members.len() == 1 {
        let ti = group.members[0] as usize;
        let index = base + ti;
        let mut buf = DerivedBuffer::default();
        let mut st = EvalStats::default();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            inject_task_fault(fault, index);
            run_task(db, view, tasks[ti], guard, &mut buf, &mut st)
        }));
        return match outcome {
            Ok(Ok(())) => Ok(vec![(ti, buf, st)]),
            Ok(Err(resource)) => Err(RoundAbort::Resource(resource)),
            Err(payload) => Err(RoundAbort::Panic {
                task: index,
                payload: panic_payload(payload),
            }),
        };
    }
    let progs: Vec<&JoinProgram> = group
        .members
        .iter()
        .map(|&ti| {
            let t = tasks[ti as usize];
            view.program(t.rule, t.delta.map(|d| d.atom))
        })
        .collect();
    let nregs = progs.iter().map(|p| p.register_count()).max().unwrap_or(0);
    let mut regs = register_file_sized(nregs);
    let mut bufs: Vec<DerivedBuffer> = (0..progs.len()).map(|_| DerivedBuffer::default()).collect();
    let mut stats: Vec<EvalStats> = vec![EvalStats::default(); progs.len()];
    let mut prefix_stats = EvalStats::default();
    // Which member's continuation is running, for panic attribution.
    let active = Cell::new(0usize);
    let range = tasks[group.members[0] as usize]
        .delta
        .map(|d| (d.start, d.end));
    let limit = group.shared_len;
    debug_assert!(progs.iter().all(|p| p.op_len() >= limit));
    let outcome = {
        let progs = &progs;
        let bufs = &mut bufs;
        let stats = &mut stats;
        let active = &active;
        catch_unwind(AssertUnwindSafe(|| {
            for &ti in &group.members {
                inject_task_fault(fault, base + ti as usize);
            }
            progs[0].execute_prefix(
                db,
                limit,
                range,
                &mut regs,
                guard,
                &mut prefix_stats,
                &mut |regs| {
                    // One prefix evaluation serves every member: the other
                    // `members - 1` evaluations are the cache hits.
                    stats[0].shared_prefix_hits += progs.len() - 1;
                    for (m, prog) in progs.iter().enumerate() {
                        active.set(m);
                        let pred = prog.head_pred();
                        let buf = &mut bufs[m];
                        prog.execute_from(
                            db,
                            limit,
                            regs,
                            guard,
                            &mut stats[m],
                            &mut |head, r| {
                                buf.push_slots(pred, head, r);
                            },
                        )?;
                    }
                    active.set(0);
                    Ok(())
                },
            )
        }))
    };
    match outcome {
        Ok(Ok(())) => {
            // The prefix's own probes belong to the member that owns it.
            stats[0].absorb(prefix_stats);
            Ok(group
                .members
                .iter()
                .zip(bufs.into_iter().zip(stats))
                .map(|(&ti, (buf, st))| (ti as usize, buf, st))
                .collect())
        }
        Ok(Err(resource)) => Err(RoundAbort::Resource(resource)),
        Err(payload) => Err(RoundAbort::Panic {
            task: base + group.members[active.get()] as usize,
            payload: panic_payload(payload),
        }),
    }
}

/// Executes the round's groups in order on the calling thread, with the
/// same panic isolation as the parallel path (a poisoned task must not
/// abort the process on single-core machines either). Returns the
/// per-task results sorted by task index.
#[allow(clippy::too_many_arguments)]
fn run_tasks_sequential(
    db: &Database,
    view: &PlanView<'_>,
    tasks: &[Task],
    groups: &[TaskGroup],
    base: usize,
    gov: &Governor,
    fault: &FaultPlan,
) -> Result<Vec<(usize, DerivedBuffer, EvalStats)>, RoundAbort> {
    let guard = gov.probe_guard(None);
    let mut results = Vec::with_capacity(tasks.len());
    for group in groups {
        results.extend(run_group(db, view, tasks, group, base, &guard, fault)?);
    }
    results.sort_unstable_by_key(|&(i, _, _)| i);
    Ok(results)
}

/// Executes the round's groups on `threads` scoped workers. A shared
/// atomic cursor hands out groups; each worker keeps `(task index, buffer,
/// stats)` triples, and the caller consumes them in ascending task index,
/// making the output indistinguishable from running the tasks in order on
/// one thread.
///
/// Failure handling: each group body runs under `catch_unwind` (inside
/// [`run_group`]); the first failure sets a round-local abort flag
/// (checked by siblings at group hand-out and inside probe checks) and is
/// recorded by smallest task index, panics outranking resource trips, so
/// the reported error does not depend on worker scheduling.
#[allow(clippy::too_many_arguments)]
fn run_tasks_parallel(
    db: &Database,
    view: &PlanView<'_>,
    tasks: &[Task],
    groups: &[TaskGroup],
    threads: usize,
    base: usize,
    gov: &Governor,
    fault: &FaultPlan,
) -> Result<Vec<(usize, DerivedBuffer, EvalStats)>, RoundAbort> {
    let workers = threads.min(groups.len());
    let cursor = AtomicUsize::new(0);
    let abort = AtomicBool::new(false);
    let failure: Mutex<Option<(usize, RoundAbort)>> = Mutex::new(None);
    let record = |index: usize, ab: RoundAbort| {
        let mut slot = failure.lock().unwrap_or_else(|e| e.into_inner());
        let replace = match (&*slot, &ab) {
            (None, _) => true,
            (Some((_, RoundAbort::Resource(_))), RoundAbort::Panic { .. }) => true,
            (Some((_, RoundAbort::Panic { .. })), RoundAbort::Resource(_)) => false,
            (Some((at, _)), _) => index < *at,
        };
        if replace {
            *slot = Some((index, ab));
        }
        // Release-ordered so a sibling that observes the flag is
        // guaranteed a recorded failure once the scope joins.
        abort.store(true, Ordering::Release);
    };
    let mut results: Vec<(usize, DerivedBuffer, EvalStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let guard = gov.probe_guard(Some(&abort));
                    let mut done: Vec<(usize, DerivedBuffer, EvalStats)> = Vec::new();
                    loop {
                        if abort.load(Ordering::Acquire) {
                            return done;
                        }
                        let g = cursor.fetch_add(1, Ordering::Relaxed);
                        if g >= groups.len() {
                            return done;
                        }
                        let group = &groups[g];
                        match run_group(db, view, tasks, group, base, &guard, fault) {
                            Ok(rs) => done.extend(rs),
                            Err(ab) => {
                                let (index, poisoned) = match &ab {
                                    RoundAbort::Panic { task, .. } => (*task, false),
                                    // A `Cancelled` trip with the token
                                    // still clear came from the round's
                                    // abort flag: some sibling already
                                    // recorded the real failure, so don't
                                    // relabel it.
                                    RoundAbort::Resource(resource) => (
                                        base + group.members[0] as usize,
                                        *resource == Resource::Cancelled
                                            && !gov.is_cancelled()
                                            && abort.load(Ordering::Acquire),
                                    ),
                                };
                                if !poisoned {
                                    record(index, ab);
                                }
                                return done;
                            }
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| match h.join() {
                Ok(done) => done,
                // Unreachable in practice — the group body is fully wrapped
                // in `catch_unwind` — but a defect here must poison the
                // round, not abort the process.
                Err(payload) => {
                    record(
                        usize::MAX,
                        RoundAbort::Panic {
                            task: base,
                            payload: panic_payload(payload),
                        },
                    );
                    Vec::new()
                }
            })
            .collect()
    });
    if let Some((_, ab)) = failure.into_inner().unwrap_or_else(|e| e.into_inner()) {
        return Err(ab);
    }
    results.sort_unstable_by_key(|&(i, _, _)| i);
    Ok(results)
}

/// Evaluates `rules` over `db` to the least fixpoint, semi-naively.
pub fn evaluate(db: &mut Database, rules: &[Rule]) -> Result<EvalStats, EvalError> {
    evaluate_governed(db, rules, &Governor::default())
}

/// [`evaluate`] under an explicit governor (budgets/cancellation/faults).
pub fn evaluate_governed(
    db: &mut Database,
    rules: &[Rule],
    governor: &Governor,
) -> Result<EvalStats, EvalError> {
    // One-shot entry point: the initial facts are already loaded, so plan
    // against their statistics (cold relations fall back to greedy).
    let plan = DeltaPlan::planned(rules, db);
    IncrementalEval::new()
        .with_governor(governor.clone())
        .run(db, rules, &plan)
}

/// Evaluates `rules` naively (full re-derivation each round). Same fixpoint
/// as [`evaluate`]; used as an oracle and the textbook baseline. Always
/// sequential, but runs the same compiled programs as the semi-naive path.
pub fn evaluate_naive(db: &mut Database, rules: &[Rule]) -> Result<EvalStats, EvalError> {
    evaluate_naive_governed(db, rules, &Governor::default())
}

/// [`evaluate_naive`] under an explicit governor. Same round-boundary and
/// merge-loop checks as the semi-naive path (the oracle must stay honest
/// about budgets too, or differential tests of truncated runs diverge).
pub fn evaluate_naive_governed(
    db: &mut Database,
    rules: &[Rule],
    governor: &Governor,
) -> Result<EvalStats, EvalError> {
    let plan = DeltaPlan::planned(rules, db);
    let fault = *governor.fault();
    let mut stats = EvalStats::default();
    loop {
        let committed = stats;
        if let Err(resource) = governor.begin_round() {
            governor.abort_round();
            return Err(EvalError::BudgetExhausted {
                resource,
                partial: committed,
            });
        }
        if let Some(limit) = governor.max_bytes() {
            if db.approx_bytes() > limit {
                governor.abort_round();
                return Err(EvalError::BudgetExhausted {
                    resource: Resource::Bytes,
                    partial: committed,
                });
            }
        }
        stats.rounds += 1;
        plan.ensure_indexes(db);
        let tasks: Vec<Task> = (0..rules.len())
            .map(|ri| Task {
                rule: ri as u32,
                delta: None,
            })
            .collect();
        let base = governor.reserve_tasks(tasks.len());
        // The naive oracle stays ungrouped and non-adaptive: it is the
        // textbook baseline the adaptive path is differentially tested
        // against.
        let view = PlanView {
            plan: &plan,
            overrides: &[],
        };
        let groups = build_groups(&view, &tasks, false);
        let results = match run_tasks_sequential(db, &view, &tasks, &groups, base, governor, &fault)
        {
            Ok(results) => results,
            Err(abort) => return Err(abort.into_eval_error(committed)),
        };
        let mut buffer = DerivedBuffer::default();
        for (_, buf, st) in results {
            buffer.absorb(buf);
            stats.absorb(st);
        }
        let mut changed = false;
        for (p, t) in buffer.iter() {
            if db.insert_derived(p, t) {
                changed = true;
                stats.derived += 1;
                if !governor.note_row() {
                    return Err(EvalError::BudgetExhausted {
                        resource: Resource::Rows,
                        partial: stats,
                    });
                }
            }
        }
        if !changed {
            return Ok(stats);
        }
    }
}

/// Evaluates the conjunctive query `body` over `db` and returns the distinct
/// bindings of `out_vars`, in derivation order.
///
/// The body is compiled to a [`JoinProgram`] in its *written* atom order
/// (derivation order is part of the contract, so no reordering here); the
/// database is borrowed immutably, so multi-column probes that lack a
/// pre-built composite index fall back to the most selective single-column
/// bucket and count as `index_misses`.
pub fn query(db: &Database, body: &[Atom], out_vars: &[Var]) -> Result<Vec<Vec<Cst>>, EvalError> {
    query_governed(db, body, out_vars, &Governor::default())
}

/// [`query`] under an explicit governor: the join is interruptible at the
/// usual probe granularity, and a panic during execution (e.g. an output
/// variable unbound by the body) surfaces as [`EvalError::WorkerPanicked`]
/// instead of unwinding through the caller.
pub fn query_governed(
    db: &Database,
    body: &[Atom],
    out_vars: &[Var],
    governor: &Governor,
) -> Result<Vec<Vec<Cst>>, EvalError> {
    let mut stats = EvalStats::default();
    query_collect(db, body, out_vars, governor, &mut stats)
}

/// The shared executor behind [`query_governed`] and the goal-directed
/// [`query_demand_governed`]: runs the compiled body and *accumulates* probe
/// counters into `stats` instead of discarding them.
fn query_collect(
    db: &Database,
    body: &[Atom],
    out_vars: &[Var],
    governor: &Governor,
    stats: &mut EvalStats,
) -> Result<Vec<Vec<Cst>>, EvalError> {
    // Pose the query as a rule whose head projects the output variables;
    // the head predicate is never inserted anywhere, so a placeholder works.
    let pseudo = Rule::new(
        Atom::new(
            Pred(fundb_term::Sym::PLACEHOLDER),
            out_vars.iter().map(|&v| Term::Var(v)).collect(),
        ),
        body.to_vec(),
    );
    let order: Vec<usize> = (0..body.len()).collect();
    let prog = JoinProgram::compile_ordered(&pseudo, &order);
    let mut regs = register_file(&prog);
    let mut out: Vec<Vec<Cst>> = Vec::new();
    // Dedup without a second copy of each row: hash buckets of indexes
    // into `out`, confirmed against the stored row (same scheme as the
    // relation dedup table).
    let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    let task = governor.reserve_tasks(1);
    let guard = governor.probe_guard(None);
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        prog.execute(
            db,
            None,
            &mut regs,
            &guard,
            &mut *stats,
            &mut |head, regs| {
                let row: Vec<Cst> = head
                    .iter()
                    .map(|s| match s {
                        HeadSlot::Const(c) => *c,
                        HeadSlot::Reg(r) => regs[*r as usize],
                        HeadSlot::Unbound => panic!("query output variable unbound by body"),
                    })
                    .collect();
                let bucket = seen.entry(hash_row(&row)).or_default();
                if !bucket.iter().any(|&i| out[i as usize] == row) {
                    bucket.push(out.len() as u32);
                    out.push(row);
                }
            },
        )
    }));
    match outcome {
        Ok(Ok(())) => Ok(out),
        Ok(Err(resource)) => Err(EvalError::BudgetExhausted {
            resource,
            partial: *stats,
        }),
        Err(payload) => Err(EvalError::WorkerPanicked {
            task,
            payload: panic_payload(payload),
        }),
    }
}

/// The answer of a goal-directed query: the distinct output rows, the
/// evaluation counters (overlay fixpoint plus final join, including
/// `magic_rules` / `demanded_tuples`), and whether the magic rewrite
/// actually applied or the engine fell back to full materialization.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DemandAnswer {
    /// Distinct bindings of the output variables, in derivation order.
    pub rows: Vec<Vec<Cst>>,
    /// Counters for the whole answer: overlay evaluation + answer join.
    pub stats: EvalStats,
    /// `true` when the magic rewrite applied; `false` on the degenerate
    /// fallbacks (all-free goal, EDB-only goal, over-wide atoms).
    pub goal_directed: bool,
    /// Mid-run re-plans the overlay fixpoint applied, in order (empty when
    /// nothing drifted, or on the direct-join fallback).
    pub replan_events: Vec<ReplanEvent>,
}

/// Goal-directed conjunctive query over `db` given the IDB `rules`: rewrites
/// the program by [`crate::magic::magic_rewrite`] for the goal's binding
/// pattern, evaluates the rewritten program into a scratch *overlay* database
/// (the base `db` is never mutated — it stays a plain shared borrow), and
/// joins the transformed body over the overlay. Answers equal
/// `evaluate(db.clone(), rules)` followed by [`query`] — the differential
/// fuzz harness pins that — but only the goal-reachable cone is derived.
///
/// Degenerate goals fall back transparently: an all-free goal materializes
/// the full fixpoint into the overlay; a goal over EDB (or missing)
/// predicates only is answered by a direct join against `db`.
pub fn query_demand(
    db: &Database,
    rules: &[Rule],
    body: &[Atom],
    out_vars: &[Var],
) -> Result<DemandAnswer, EvalError> {
    query_demand_governed(db, rules, body, out_vars, &Governor::default())
}

/// [`query_demand`] under an explicit governor: the overlay fixpoint and the
/// answer join observe the same budgets, cancellation, and fault plan as
/// [`evaluate_governed`].
pub fn query_demand_governed(
    db: &Database,
    rules: &[Rule],
    body: &[Atom],
    out_vars: &[Var],
    governor: &Governor,
) -> Result<DemandAnswer, EvalError> {
    query_demand_tuned(db, rules, body, out_vars, governor, None, None)
}

/// [`query_demand_governed`] with the overlay evaluator's thread count and
/// parallel threshold pinned, for determinism tests and benchmarks.
#[doc(hidden)]
pub fn query_demand_tuned(
    db: &Database,
    rules: &[Rule],
    body: &[Atom],
    out_vars: &[Var],
    governor: &Governor,
    threads: Option<usize>,
    min_parallel_rows: Option<usize>,
) -> Result<DemandAnswer, EvalError> {
    let overlay_eval = |scratch: &mut Database,
                        rules: &[Rule]|
     -> Result<(EvalStats, Vec<ReplanEvent>), EvalError> {
        let plan = DeltaPlan::planned(rules, scratch);
        let mut eval = IncrementalEval::new().with_governor(governor.clone());
        if let Some(t) = threads {
            eval = eval.with_threads(t);
        }
        if let Some(m) = min_parallel_rows {
            eval = eval.with_parallel_threshold(m);
        }
        let run_stats = eval.run(scratch, rules, &plan)?;
        Ok((run_stats, eval.replan_log))
    };
    let mut stats = EvalStats::default();
    if let Some(mp) = crate::magic::magic_rewrite(rules, body) {
        // Seed the overlay with exactly the base relations the rewritten
        // program references, in first-reference order (deterministic row
        // ids), plus the ground magic seeds from the goal's constants.
        let mut scratch = Database::new();
        for p in mp.base_preds() {
            if let Some(rel) = db.relation(p) {
                let dst = scratch.relation_mut(p, rel.arity());
                for row in rel.rows() {
                    dst.insert(row);
                }
            }
        }
        for (p, row) in &mp.seeds {
            scratch.insert(*p, row);
        }
        stats.magic_rules = mp.magic_rule_count;
        let (run_stats, replan_events) = overlay_eval(&mut scratch, &mp.rules)?;
        stats.absorb(run_stats);
        stats.demanded_tuples = mp
            .magic_preds()
            .iter()
            .map(|&p| scratch.relation(p).map_or(0, crate::rel::Relation::len))
            .sum();
        let rows = query_collect(&scratch, &mp.query_body, out_vars, governor, &mut stats)?;
        Ok(DemandAnswer {
            rows,
            stats,
            goal_directed: true,
            replan_events,
        })
    } else {
        let idb: fundb_term::FxHashSet<Pred> = rules.iter().map(|r| r.head.pred).collect();
        if body.iter().any(|a| idb.contains(&a.pred)) {
            // All-free (or over-wide) goal over IDB predicates: the full
            // fixpoint is genuinely needed. Materialize it into an overlay
            // so the contract (base never mutated) still holds.
            let mut scratch = db.clone();
            let (run_stats, replan_events) = overlay_eval(&mut scratch, rules)?;
            stats.absorb(run_stats);
            let rows = query_collect(&scratch, body, out_vars, governor, &mut stats)?;
            Ok(DemandAnswer {
                rows,
                stats,
                goal_directed: false,
                replan_events,
            })
        } else {
            // EDB-only (or missing-predicate) goal: the base facts are
            // already complete for every body atom; join directly.
            let rows = query_collect(db, body, out_vars, governor, &mut stats)?;
            Ok(DemandAnswer {
                rows,
                stats,
                goal_directed: false,
                replan_events: Vec::new(),
            })
        }
    }
}

#[cfg(test)]
fn query_rec(
    db: &Database,
    body: &[Atom],
    idx: usize,
    subst: &mut FxHashMap<Var, Cst>,
    emit: &mut dyn FnMut(&FxHashMap<Var, Cst>),
) {
    if idx == body.len() {
        emit(subst);
        return;
    }
    let atom = &body[idx];
    let Some(rel) = db.relation(atom.pred) else {
        return;
    };
    // The pattern is a snapshot of the current bindings, so the selection
    // can borrow it while `subst` is rebound below.
    let pattern: Vec<Option<Cst>> = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => subst.get(v).copied(),
        })
        .collect();
    for row in rel.select(&pattern) {
        let mut bound = Vec::new();
        let mut ok = true;
        for (t, v) in atom.args.iter().zip(row.iter()) {
            if let Term::Var(var) = t {
                match subst.get(var) {
                    Some(&existing) => {
                        if existing != *v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(*var, *v);
                        bound.push(*var);
                    }
                }
            }
        }
        if ok {
            query_rec(db, body, idx + 1, subst, emit);
        }
        for var in bound {
            subst.remove(&var);
        }
    }
}

/// Recursive join over the rule body; when the task carries a delta range,
/// that atom ranges only over the given chunk of fresh rows.
///
/// This is the PR 1/2 interpreter, retained as the differential-testing
/// oracle for the compiled [`JoinProgram`] path: it visits atoms in
/// written order, binds variables through a hash map, and selects through
/// [`crate::rel::Relation::select`] patterns.
#[allow(clippy::too_many_arguments)]
fn join_rec(
    db: &Database,
    rule: &Rule,
    idx: usize,
    delta: Option<DeltaRange>,
    subst: &mut FxHashMap<Var, Cst>,
    out: &mut DerivedBuffer,
    stats: &mut EvalStats,
) {
    if idx == rule.body.len() {
        out.push_head(rule, subst);
        return;
    }
    let atom = &rule.body[idx];
    let Some(rel) = db.relation(atom.pred) else {
        return;
    };
    // Delta atoms scan their (short) chunk of the fresh suffix; other atoms
    // go through the indexed selection with the bindings established so far.
    let delta_here = delta.filter(|d| d.atom as usize == idx);
    let pattern: Vec<Option<Cst>>;
    let rows: SelectOrRange<'_, '_> = match delta_here {
        Some(d) => SelectOrRange::Range(rel.rows_range(d.start, d.end)),
        None => {
            pattern = atom
                .args
                .iter()
                .map(|t| match t {
                    Term::Const(c) => Some(*c),
                    Term::Var(v) => subst.get(v).copied(),
                })
                .collect();
            if pattern.iter().any(Option::is_some) {
                stats.index_hits += 1;
            }
            SelectOrRange::Select(rel.select(&pattern))
        }
    };
    for row in rows {
        stats.join_probes += 1;
        let mut bound = smallvec_like();
        let mut ok = true;
        for (t, v) in atom.args.iter().zip(row.iter()) {
            match t {
                Term::Const(c) => {
                    if c != v {
                        ok = false;
                        break;
                    }
                }
                Term::Var(var) => match subst.get(var) {
                    Some(&existing) => {
                        if existing != *v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(*var, *v);
                        bound.push(*var);
                    }
                },
            }
        }
        if ok {
            join_rec(db, rule, idx + 1, delta, subst, out, stats);
        }
        for var in bound {
            subst.remove(&var);
        }
    }
}

/// Either a delta-range scan or an indexed selection, as one iterator type.
enum SelectOrRange<'a, 'p> {
    Range(crate::rel::Rows<'a>),
    Select(crate::rel::Select<'a, 'p>),
}

impl<'a> Iterator for SelectOrRange<'a, '_> {
    type Item = &'a [Cst];

    #[inline]
    fn next(&mut self) -> Option<&'a [Cst]> {
        match self {
            SelectOrRange::Range(r) => r.next(),
            SelectOrRange::Select(s) => s.next(),
        }
    }
}

/// Tiny inline buffer for per-atom freshly-bound variables (atoms rarely
/// bind more than a handful).
fn smallvec_like() -> Vec<Var> {
    Vec::with_capacity(4)
}

/// The interpreted naive fixpoint: identical contract to
/// [`evaluate_naive`], but runs [`join_rec`] — the PR 1/2 interpreter —
/// instead of compiled programs. Differential-testing oracle only; exposed
/// (hidden) so the cross-crate fuzz harness can anchor its agreement
/// lattice on the oldest, simplest evaluator in the tree.
#[doc(hidden)]
pub fn evaluate_naive_interpreted(db: &mut Database, rules: &[Rule]) -> EvalStats {
    let mut stats = EvalStats::default();
    loop {
        stats.rounds += 1;
        let mut buffer = DerivedBuffer::default();
        for rule in rules {
            let mut subst = FxHashMap::default();
            join_rec(db, rule, 0, None, &mut subst, &mut buffer, &mut stats);
        }
        let mut changed = false;
        for (p, t) in buffer.iter() {
            if db.insert_derived(p, t) {
                changed = true;
                stats.derived += 1;
            }
        }
        if !changed {
            return stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_term::{Interner, Pred};

    struct Fixture {
        i: Interner,
        edge: Pred,
        path: Pred,
        x: Var,
        y: Var,
        z: Var,
    }

    fn fixture() -> Fixture {
        let mut i = Interner::new();
        let edge = Pred(i.intern("Edge"));
        let path = Pred(i.intern("Path"));
        let x = Var(i.intern("x"));
        let y = Var(i.intern("y"));
        let z = Var(i.intern("z"));
        Fixture {
            i,
            edge,
            path,
            x,
            y,
            z,
        }
    }

    fn transitive_closure_rules(fx: &Fixture) -> Vec<Rule> {
        vec![
            // Edge(x,y) → Path(x,y)
            Rule::new(
                Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                vec![Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)])],
            ),
            // Path(x,y), Edge(y,z) → Path(x,z)
            Rule::new(
                Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.z)]),
                vec![
                    Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                    Atom::new(fx.edge, vec![Term::Var(fx.y), Term::Var(fx.z)]),
                ],
            ),
        ]
    }

    fn chain_db(fx: &mut Fixture, n: usize) -> Database {
        let mut db = Database::new();
        let nodes: Vec<Cst> = (0..=n)
            .map(|k| Cst(fx.i.intern(&format!("v{k}"))))
            .collect();
        for w in nodes.windows(2) {
            db.insert(fx.edge, &[w[0], w[1]]);
        }
        db
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 10);
        evaluate(&mut db, &rules).unwrap();
        // Path has n*(n+1)/2 pairs for a chain of n edges.
        assert_eq!(db.relation(fx.path).unwrap().len(), 10 * 11 / 2);
    }

    #[test]
    fn semi_naive_matches_naive() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db1 = chain_db(&mut fx, 8);
        let mut db2 = db1.clone();
        evaluate(&mut db1, &rules).unwrap();
        evaluate_naive(&mut db2, &rules).unwrap();
        assert_eq!(db1.dump(&fx.i), db2.dump(&fx.i));
    }

    #[test]
    fn stale_stats_change_plans_not_answers() {
        // Stats drift: a plan compiled from an *old* snapshot (here: a
        // 2-edge chain) keeps answering correctly after the database has
        // grown past anything the estimates describe. Only probe counts may
        // differ from a fresh plan — never the fixpoint.
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 2);
        let stale_plan = DeltaPlan::planned(&rules, &db);
        // Grow the database 20x after the snapshot was taken.
        for k in 2..40 {
            let a = Cst(fx.i.intern(&format!("v{k}")));
            let b = Cst(fx.i.intern(&format!("v{}", k + 1)));
            db.insert(fx.edge, &[a, b]);
        }
        let mut stale_db = db.clone();
        let mut fresh_db = db.clone();
        let mut greedy_db = db;
        IncrementalEval::new()
            .run(&mut stale_db, &rules, &stale_plan)
            .unwrap();
        let fresh_plan = DeltaPlan::planned(&rules, &fresh_db);
        IncrementalEval::new()
            .run(&mut fresh_db, &rules, &fresh_plan)
            .unwrap();
        evaluate_naive(&mut greedy_db, &rules).unwrap();
        assert_eq!(stale_db.dump(&fx.i), fresh_db.dump(&fx.i));
        assert_eq!(stale_db.dump(&fx.i), greedy_db.dump(&fx.i));
    }

    #[test]
    fn planned_plan_is_deterministic_across_thread_counts() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let base = chain_db(&mut fx, 16);
        let plan = DeltaPlan::planned(&rules, &base);
        let mut reference: Option<(Vec<String>, EvalStats)> = None;
        for threads in [1usize, 2, 4, 8] {
            let mut db = base.clone();
            let stats = IncrementalEval::new()
                .with_threads(threads)
                .with_parallel_threshold(1)
                .run(&mut db, &rules, &plan)
                .unwrap();
            let dump = db.dump(&fx.i);
            match &reference {
                None => reference = Some((dump, stats)),
                Some((d, s)) => {
                    assert_eq!(&dump, d, "threads={threads} changed rows");
                    assert_eq!(&stats, s, "threads={threads} changed stats");
                }
            }
        }
    }

    #[test]
    fn semi_naive_derives_each_fact_once_on_chain() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 12);
        let stats = evaluate(&mut db, &rules).unwrap();
        assert_eq!(stats.derived, 12 * 13 / 2);
    }

    #[test]
    fn facts_as_empty_body_rules_fire_once() {
        let mut fx = fixture();
        let a = Cst(fx.i.intern("a"));
        let rules = vec![Rule::new(
            Atom::new(fx.edge, vec![Term::Const(a), Term::Const(a)]),
            vec![],
        )];
        let mut db = Database::new();
        let stats = evaluate(&mut db, &rules).unwrap();
        assert_eq!(stats.derived, 1);
        assert!(db.contains(fx.edge, &[a, a]));
    }

    #[test]
    fn query_binds_and_dedups() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 4);
        evaluate(&mut db, &rules).unwrap();
        let v0 = Cst(fx.i.intern("v0"));
        // {y : Path(v0, y)}
        let body = vec![Atom::new(fx.path, vec![Term::Const(v0), Term::Var(fx.y)])];
        let rows = query(&db, &body, &[fx.y]).unwrap();
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn query_joins_shared_variables() {
        let mut fx = fixture();
        let mut db = chain_db(&mut fx, 3);
        evaluate(&mut db, &transitive_closure_rules(&fx)).unwrap();
        // {x : Edge(x,y), Edge(y,z)} — x with an outgoing 2-step path.
        let body = vec![
            Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)]),
            Atom::new(fx.edge, vec![Term::Var(fx.y), Term::Var(fx.z)]),
        ];
        let rows = query(&db, &body, &[fx.x]).unwrap();
        assert_eq!(rows.len(), 2); // v0 and v1
    }

    #[test]
    fn query_on_missing_predicate_is_empty() {
        let fx = fixture();
        let db = Database::new();
        let body = vec![Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)])];
        assert!(query(&db, &body, &[fx.x]).unwrap().is_empty());
    }

    #[test]
    fn resume_derives_only_consequences_of_new_facts() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let mut db = chain_db(&mut fx, 10);
        let mut eval = IncrementalEval::new();
        let first = eval.run(&mut db, &rules, &plan).unwrap();
        assert_eq!(first.derived, 10 * 11 / 2);

        // Resuming a saturated database is a no-op.
        let idle = eval.run(&mut db, &rules, &plan).unwrap();
        assert_eq!(idle.derived, 0);
        assert_eq!(idle.join_probes, 0);

        // Extend the chain by one edge: v10 → v11.
        let v10 = Cst(fx.i.intern("v10"));
        let v11 = Cst(fx.i.intern("v11"));
        db.insert(fx.edge, &[v10, v11]);
        let resumed = eval.run(&mut db, &rules, &plan).unwrap();
        // Exactly the 11 new paths ending at v11, nothing re-derived.
        assert_eq!(resumed.derived, 11);
        assert_eq!(db.relation(fx.path).unwrap().len(), 11 * 12 / 2);

        // The resumed result matches a from-scratch evaluation.
        let mut fresh = chain_db(&mut fx, 11);
        evaluate(&mut fresh, &rules).unwrap();
        assert_eq!(db.dump(&fx.i), fresh.dump(&fx.i));
    }

    #[test]
    fn delta_plan_maps_predicates_to_positions() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        // Edge appears in rule 0 position 0 and rule 1 position 1.
        assert_eq!(plan.positions(fx.edge), &[(0, 0), (1, 1)]);
        // Path appears only in rule 1 position 0.
        assert_eq!(plan.positions(fx.path), &[(1, 0)]);
        // Unknown predicates have no positions.
        let ghost = Pred(fx.i.intern("Ghost"));
        assert!(plan.positions(ghost).is_empty());
    }

    #[test]
    fn probe_and_index_counters_move() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 6);
        let stats = evaluate(&mut db, &rules).unwrap();
        assert!(stats.join_probes > 0);
        // The recursive rule joins Edge on a bound column every round.
        assert!(stats.index_hits > 0);
    }

    #[test]
    fn empty_body_rules_do_not_refire_on_resume() {
        let mut fx = fixture();
        let a = Cst(fx.i.intern("a"));
        let rules = vec![Rule::new(
            Atom::new(fx.edge, vec![Term::Const(a), Term::Const(a)]),
            vec![],
        )];
        let plan = DeltaPlan::new(&rules);
        let mut db = Database::new();
        let mut eval = IncrementalEval::new();
        assert_eq!(eval.run(&mut db, &rules, &plan).unwrap().derived, 1);
        assert_eq!(eval.run(&mut db, &rules, &plan).unwrap().derived, 0);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = Database::new();
        let nodes: Vec<Cst> = (0..5).map(|k| Cst(fx.i.intern(&format!("c{k}")))).collect();
        for k in 0..5 {
            db.insert(fx.edge, &[nodes[k], nodes[(k + 1) % 5]]);
        }
        evaluate(&mut db, &rules).unwrap();
        assert_eq!(db.relation(fx.path).unwrap().len(), 25);
    }

    /// Runs TC on a chain with an explicit thread count and a threshold of
    /// 1 (every round eligible for the parallel path), returning the row
    /// order of `Path` and the stats.
    fn run_parallel_tc(fx: &mut Fixture, n: usize, threads: usize) -> (Vec<Vec<Cst>>, EvalStats) {
        let rules = transitive_closure_rules(fx);
        let plan = DeltaPlan::new(&rules);
        let mut db = chain_db(fx, n);
        let mut eval = IncrementalEval::new()
            .with_threads(threads)
            .with_parallel_threshold(1);
        let stats = eval.run(&mut db, &rules, &plan).unwrap();
        let rows = db
            .relation(fx.path)
            .unwrap()
            .rows()
            .map(<[Cst]>::to_vec)
            .collect();
        (rows, stats)
    }

    #[test]
    fn parallel_rounds_are_byte_identical_to_sequential() {
        let mut fx = fixture();
        let (seq_rows, seq_stats) = run_parallel_tc(&mut fx, 40, 1);
        for threads in [2, 4, 8] {
            let (rows, stats) = run_parallel_tc(&mut fx, 40, threads);
            assert_eq!(rows, seq_rows, "row order diverged at {threads} threads");
            assert_eq!(stats, seq_stats, "stats diverged at {threads} threads");
        }
    }

    #[test]
    fn chunked_delta_ranges_partition_exactly() {
        // A chain long enough that delta rounds exceed 2 * MIN_CHUNK_ROWS
        // and the leading Path atom of the recursive rule gets chunked.
        let mut fx = fixture();
        let (seq_rows, seq_stats) = run_parallel_tc(&mut fx, 2 * MIN_CHUNK_ROWS + 70, 1);
        let (par_rows, par_stats) = run_parallel_tc(&mut fx, 2 * MIN_CHUNK_ROWS + 70, 4);
        assert_eq!(par_rows, seq_rows);
        assert_eq!(par_stats, seq_stats);
    }

    #[test]
    fn small_rounds_fall_back_to_sequential() {
        // Default threshold: a 10-edge chain never reaches it, so the run
        // must behave exactly like threads = 1 (this is implicit — the
        // assertion is that results and stats still match).
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let mut db = chain_db(&mut fx, 10);
        let stats = IncrementalEval::new()
            .with_threads(8)
            .run(&mut db, &rules, &plan)
            .unwrap();
        assert_eq!(stats.derived, 10 * 11 / 2);
    }

    /// Right-recursive transitive closure: the recursive atom sits at body
    /// position 1, so the interpreter had to scan Edge fully per round
    /// while the compiled per-delta program hoists the delta outermost.
    fn tc_right_rules(fx: &Fixture) -> Vec<Rule> {
        vec![
            Rule::new(
                Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                vec![Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)])],
            ),
            // Path(x,z) ← Edge(x,y), Path(y,z): delta Path is non-leading.
            Rule::new(
                Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.z)]),
                vec![
                    Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                    Atom::new(fx.path, vec![Term::Var(fx.y), Term::Var(fx.z)]),
                ],
            ),
        ]
    }

    #[test]
    fn right_recursion_matches_left_recursion() {
        let mut fx = fixture();
        let mut left = chain_db(&mut fx, 12);
        let mut right = left.clone();
        evaluate(&mut left, &transitive_closure_rules(&fx)).unwrap();
        let stats = evaluate(&mut right, &tc_right_rules(&fx)).unwrap();
        assert_eq!(left.dump(&fx.i), right.dump(&fx.i));
        // The delta-first reorder keeps the non-leading recursion linear:
        // well under two probes per derived row plus the seeding scans.
        assert!(
            stats.join_probes <= 4 * stats.derived + 2 * 12,
            "non-leading delta still scans: {} probes for {} rows",
            stats.join_probes,
            stats.derived
        );
    }

    #[test]
    fn chunked_non_leading_delta_is_thread_invariant() {
        // Long enough that delta rounds at body position 1 get chunked —
        // illegal under the PR 2 interpreter, exact under compiled
        // programs because the delta atom runs outermost.
        let mut fx = fixture();
        let rules = tc_right_rules(&fx);
        let n = 2 * MIN_CHUNK_ROWS + 70;
        let run = |fx: &mut Fixture, threads: usize| {
            let plan = DeltaPlan::new(&rules);
            let mut db = chain_db(fx, n);
            let mut eval = IncrementalEval::new()
                .with_threads(threads)
                .with_parallel_threshold(1);
            let stats = eval.run(&mut db, &rules, &plan).unwrap();
            let rows: Vec<Vec<Cst>> = db
                .relation(fx.path)
                .unwrap()
                .rows()
                .map(<[Cst]>::to_vec)
                .collect();
            (rows, stats)
        };
        let (seq_rows, seq_stats) = run(&mut fx, 1);
        for threads in [2, 4, 8] {
            let (rows, stats) = run(&mut fx, threads);
            assert_eq!(rows, seq_rows, "row order diverged at {threads} threads");
            assert_eq!(stats, seq_stats, "stats diverged at {threads} threads");
        }
    }

    #[test]
    fn compiled_query_matches_interpreted_query() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 6);
        evaluate(&mut db, &rules).unwrap();
        let v0 = Cst(fx.i.intern("v0"));
        let bodies = vec![
            vec![Atom::new(fx.path, vec![Term::Const(v0), Term::Var(fx.y)])],
            vec![
                Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                Atom::new(fx.path, vec![Term::Var(fx.y), Term::Var(fx.z)]),
            ],
            vec![
                Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                Atom::new(fx.path, vec![Term::Var(fx.y), Term::Var(fx.x)]),
            ],
        ];
        for body in bodies {
            let out_vars: Vec<Var> = [fx.x, fx.y]
                .into_iter()
                .filter(|v| body.iter().flat_map(Atom::vars).any(|w| w == *v))
                .collect();
            // Interpreted reference: same traversal order as the compiled
            // program (written body order), so rows must match exactly.
            let mut expect: Vec<Vec<Cst>> = Vec::new();
            let mut seen: fundb_term::FxHashSet<Vec<Cst>> = fundb_term::FxHashSet::default();
            let mut subst = FxHashMap::default();
            query_rec(&db, &body, 0, &mut subst, &mut |s| {
                let row: Vec<Cst> = out_vars.iter().map(|v| s[v]).collect();
                if seen.insert(row.clone()) {
                    expect.push(row);
                }
            });
            assert_eq!(query(&db, &body, &out_vars).unwrap(), expect);
        }
    }

    /// Splitmix-style deterministic generator for the differential test.
    struct Rng(u64);

    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Differential property: across random rule sets and databases, the
    /// compiled fixpoint (greedy-reordered, register-based, composite-
    /// indexed) derives exactly the answer set of the interpreted oracle,
    /// and the semi-naive and naive compiled paths agree with both.
    #[test]
    fn compiled_fixpoint_matches_interpreted_oracle_on_random_programs() {
        let mut i = Interner::new();
        let preds: Vec<Pred> = (0..4).map(|k| Pred(i.intern(&format!("P{k}")))).collect();
        let arity = [2usize, 1, 2, 2];
        let vars: Vec<Var> = (0..4).map(|k| Var(i.intern(&format!("x{k}")))).collect();
        let csts: Vec<Cst> = (0..6).map(|k| Cst(i.intern(&format!("c{k}")))).collect();
        for seed in 0..60u64 {
            let mut rng = Rng(seed.wrapping_mul(0x5851_F42D_4C95_7F2D) + 1);
            let mut rules = Vec::new();
            for _ in 0..(2 + rng.below(4)) {
                let nbody = 1 + rng.below(3);
                let body: Vec<Atom> = (0..nbody)
                    .map(|_| {
                        let p = rng.below(preds.len());
                        let args = (0..arity[p])
                            .map(|_| {
                                if rng.below(4) == 0 {
                                    Term::Const(csts[rng.below(csts.len())])
                                } else {
                                    Term::Var(vars[rng.below(vars.len())])
                                }
                            })
                            .collect();
                        Atom::new(preds[p], args)
                    })
                    .collect();
                // Head over body variables only (range-restricted), with
                // the occasional constant.
                let body_vars: Vec<Var> = body.iter().flat_map(Atom::vars).collect();
                let hp = rng.below(preds.len());
                let head_args = (0..arity[hp])
                    .map(|_| {
                        if body_vars.is_empty() || rng.below(5) == 0 {
                            Term::Const(csts[rng.below(csts.len())])
                        } else {
                            Term::Var(body_vars[rng.below(body_vars.len())])
                        }
                    })
                    .collect();
                rules.push(Rule::new(Atom::new(preds[hp], head_args), body));
            }
            let mut db = Database::new();
            for _ in 0..(3 + rng.below(10)) {
                let p = rng.below(preds.len());
                let row: Vec<Cst> = (0..arity[p]).map(|_| csts[rng.below(csts.len())]).collect();
                db.insert(preds[p], &row);
            }

            let mut oracle_db = db.clone();
            let mut naive_db = db.clone();
            evaluate_naive_interpreted(&mut oracle_db, &rules);
            evaluate_naive(&mut naive_db, &rules).unwrap();
            evaluate(&mut db, &rules).unwrap();
            let expect = oracle_db.dump(&i);
            assert_eq!(naive_db.dump(&i), expect, "naive diverged at seed {seed}");
            assert_eq!(db.dump(&i), expect, "semi-naive diverged at seed {seed}");
        }
    }

    #[test]
    fn honest_index_counters() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 6);
        let stats = evaluate(&mut db, &rules).unwrap();
        // Every Edge probe of the recursive rule has exactly one bound
        // column — fully covered by the per-column index.
        assert!(stats.index_hits > 0);
        assert_eq!(stats.index_misses, 0);

        // A two-column bound probe against an immutable database cannot
        // build the composite index: query() reports the partial cover.
        let v0 = Cst(fx.i.intern("v0"));
        let v3 = Cst(fx.i.intern("v3"));
        let body = vec![
            Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)]),
            Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)]),
        ];
        let rows = query(&db, &body, &[fx.x, fx.y]).unwrap();
        assert_eq!(rows.len(), 6 * 7 / 2);
        assert!(db.contains(fx.path, &[v0, v3]));
    }

    #[test]
    fn thread_knobs_resolve() {
        let e = IncrementalEval::new().with_threads(3);
        assert_eq!(e.effective_threads(), 3);
        let mut e = IncrementalEval::new();
        e.set_threads(Some(0)); // clamped to 1
        assert_eq!(e.effective_threads(), 1);
        e.set_threads(None);
        assert!(e.effective_threads() >= 1);
    }

    use crate::governor::{Budget, FaultPlan, Governor, Resource};

    /// Path rows in insertion order, for prefix/byte-identity assertions.
    fn path_rows(db: &Database, fx: &Fixture) -> Vec<Vec<Cst>> {
        db.relation(fx.path)
            .map(|r| r.rows().map(<[Cst]>::to_vec).collect())
            .unwrap_or_default()
    }

    #[test]
    fn row_budget_truncates_to_identical_prefix_at_all_thread_counts() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let n = 40;
        let mut full = chain_db(&mut fx, n);
        evaluate(&mut full, &rules).unwrap();
        let full_rows = path_rows(&full, &fx);

        let cap = 30;
        let mut reference: Option<Vec<Vec<Cst>>> = None;
        for threads in [1, 2, 4, 8] {
            let plan = DeltaPlan::new(&rules);
            let mut db = chain_db(&mut fx, n);
            let gov = Governor::new(Budget::default().with_max_rows(cap))
                .with_faults(FaultPlan::default());
            let err = IncrementalEval::new()
                .with_threads(threads)
                .with_parallel_threshold(1)
                .with_governor(gov)
                .run(&mut db, &rules, &plan)
                .unwrap_err();
            let EvalError::BudgetExhausted { resource, partial } = err else {
                panic!("expected BudgetExhausted, got {err:?}");
            };
            assert_eq!(resource, Resource::Rows);
            assert_eq!(partial.derived, cap);
            let rows = path_rows(&db, &fx);
            assert_eq!(rows.len(), cap);
            assert_eq!(rows[..], full_rows[..cap], "not a prefix of the fixpoint");
            match &reference {
                None => reference = Some(rows),
                Some(r) => assert_eq!(&rows, r, "diverged at {threads} threads"),
            }
        }
    }

    #[test]
    fn round_budget_stops_at_a_round_boundary() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let mut db = chain_db(&mut fx, 8);
        let gov =
            Governor::new(Budget::default().with_max_rounds(2)).with_faults(FaultPlan::default());
        let err = IncrementalEval::new()
            .with_governor(gov)
            .run(&mut db, &rules, &plan)
            .unwrap_err();
        let EvalError::BudgetExhausted { resource, partial } = err else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        assert_eq!(resource, Resource::Rounds);
        assert_eq!(partial.rounds, 2);
        // Round 1 copies the 8 edges, round 2 adds the 7 length-2 paths.
        assert_eq!(partial.derived, 8 + 7);
        assert_eq!(db.relation(fx.path).unwrap().len(), 8 + 7);
    }

    #[test]
    fn byte_budget_trips_before_any_derivation() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let mut db = chain_db(&mut fx, 8);
        let gov =
            Governor::new(Budget::default().with_max_bytes(1)).with_faults(FaultPlan::default());
        let err = IncrementalEval::new()
            .with_governor(gov)
            .run(&mut db, &rules, &plan)
            .unwrap_err();
        let EvalError::BudgetExhausted { resource, partial } = err else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        assert_eq!(resource, Resource::Bytes);
        assert_eq!(partial, EvalStats::default());
        assert!(db.relation(fx.path).is_none(), "no round may have run");
    }

    #[test]
    fn pre_cancelled_token_stops_before_any_round() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let mut db = chain_db(&mut fx, 8);
        let gov = Governor::new(Budget::unlimited()).with_faults(FaultPlan::default());
        gov.cancel();
        let err = IncrementalEval::new()
            .with_governor(gov)
            .run(&mut db, &rules, &plan)
            .unwrap_err();
        assert!(matches!(
            err,
            EvalError::BudgetExhausted {
                resource: Resource::Cancelled,
                ..
            }
        ));
        assert!(db.relation(fx.path).is_none());
    }

    #[test]
    fn panic_task_fault_leaves_last_completed_round_sequential() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let mut db = chain_db(&mut fx, 8);
        // Round 1 runs tasks 0 and 1 (one per rule); round 2 re-runs only
        // the Path position of the recursive rule as global task 2.
        let gov = Governor::new(Budget::unlimited()).with_faults(FaultPlan {
            panic_task: Some(2),
            ..FaultPlan::default()
        });
        let err = IncrementalEval::new()
            .with_threads(1)
            .with_governor(gov)
            .run(&mut db, &rules, &plan)
            .unwrap_err();
        let EvalError::WorkerPanicked { task, payload } = err else {
            panic!("expected WorkerPanicked, got {err:?}");
        };
        assert_eq!(task, 2);
        assert!(payload.contains("panic_task:2"), "payload: {payload}");
        // Round 2's buffer was discarded whole: only round 1's edge copies.
        assert_eq!(db.relation(fx.path).unwrap().len(), 8);
    }

    #[test]
    fn panic_task_fault_in_parallel_round_poisons_round_not_process() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let mut db = chain_db(&mut fx, 8);
        // Task 1 is in round 1, which runs parallel under threshold 1.
        let gov = Governor::new(Budget::unlimited()).with_faults(FaultPlan {
            panic_task: Some(1),
            ..FaultPlan::default()
        });
        let err = IncrementalEval::new()
            .with_threads(4)
            .with_parallel_threshold(1)
            .with_governor(gov)
            .run(&mut db, &rules, &plan)
            .unwrap_err();
        let EvalError::WorkerPanicked { task, .. } = err else {
            panic!("expected WorkerPanicked, got {err:?}");
        };
        assert_eq!(task, 1);
        assert!(db.relation(fx.path).is_none(), "round 1 was discarded");
    }

    #[test]
    fn fail_round_fault_exhausts_at_its_boundary() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let mut db = chain_db(&mut fx, 8);
        let gov = Governor::new(Budget::unlimited()).with_faults(FaultPlan {
            fail_round: Some(2),
            ..FaultPlan::default()
        });
        let err = IncrementalEval::new()
            .with_governor(gov)
            .run(&mut db, &rules, &plan)
            .unwrap_err();
        let EvalError::BudgetExhausted { resource, partial } = err else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        assert_eq!(resource, Resource::Fault);
        assert_eq!(partial.rounds, 1);
        assert_eq!(db.relation(fx.path).unwrap().len(), 8);
    }

    #[test]
    fn deadline_with_slow_probe_interrupts_mid_round() {
        let mut fx = fixture();
        let rules = tc_right_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let mut db = chain_db(&mut fx, 256);
        // Every probe-level check sleeps 2ms against a 1ms budget, so the
        // deadline trips at the first check no matter the machine.
        let gov = Governor::new(Budget::default().with_max_millis(1)).with_faults(FaultPlan {
            slow_probe: Some(2000),
            ..FaultPlan::default()
        });
        let err = IncrementalEval::new()
            .with_governor(gov)
            .run(&mut db, &rules, &plan)
            .unwrap_err();
        let EvalError::BudgetExhausted { resource, .. } = err else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        assert_eq!(resource, Resource::Time);
    }

    #[test]
    fn governed_naive_oracle_honors_row_budget() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 12);
        let gov =
            Governor::new(Budget::default().with_max_rows(5)).with_faults(FaultPlan::default());
        let err = evaluate_naive_governed(&mut db, &rules, &gov).unwrap_err();
        let EvalError::BudgetExhausted { resource, partial } = err else {
            panic!("expected BudgetExhausted, got {err:?}");
        };
        assert_eq!(resource, Resource::Rows);
        assert_eq!(partial.derived, 5);
        assert_eq!(db.relation(fx.path).unwrap().len(), 5);
    }

    #[test]
    fn unbound_query_output_is_an_error_not_a_panic() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 4);
        evaluate(&mut db, &rules).unwrap();
        let w = Var(fx.i.intern("w"));
        let body = vec![Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)])];
        let err = query(&db, &body, &[w]).unwrap_err();
        assert!(matches!(err, EvalError::WorkerPanicked { .. }));
    }

    /// Full-materialization reference for the demand tests: evaluate the
    /// fixpoint on a clone, run the plain query, return sorted rows.
    fn materialized_answers(
        db: &Database,
        rules: &[Rule],
        body: &[Atom],
        out_vars: &[Var],
    ) -> Vec<Vec<Cst>> {
        let mut full = db.clone();
        evaluate(&mut full, rules).unwrap();
        let mut rows = query(&full, body, out_vars).unwrap();
        rows.sort_unstable();
        rows
    }

    fn sorted(mut rows: Vec<Vec<Cst>>) -> Vec<Vec<Cst>> {
        rows.sort_unstable();
        rows
    }

    #[test]
    fn demand_matches_materialization_on_bound_goals() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let db = chain_db(&mut fx, 16);
        let v0 = Cst(fx.i.get("v0").unwrap());
        let v9 = Cst(fx.i.get("v9").unwrap());
        let bodies = vec![
            // Ground point goal.
            vec![Atom::new(fx.path, vec![Term::Const(v0), Term::Const(v9)])],
            // First argument bound.
            vec![Atom::new(fx.path, vec![Term::Const(v0), Term::Var(fx.y)])],
            // Second argument bound.
            vec![Atom::new(fx.path, vec![Term::Var(fx.x), Term::Const(v9)])],
            // Join-bound IDB atom, no constants.
            vec![
                Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                Atom::new(fx.path, vec![Term::Var(fx.y), Term::Var(fx.z)]),
            ],
        ];
        for body in bodies {
            let out_vars: Vec<Var> = {
                let mut vs: Vec<Var> = body.iter().flat_map(Atom::vars).collect();
                vs.sort_unstable();
                vs.dedup();
                vs
            };
            let ans = query_demand(&db, &rules, &body, &out_vars).unwrap();
            assert!(ans.goal_directed);
            assert!(ans.stats.magic_rules > 0);
            assert!(ans.stats.demanded_tuples > 0);
            assert_eq!(
                sorted(ans.rows),
                materialized_answers(&db, &rules, &body, &out_vars)
            );
        }
    }

    #[test]
    fn demand_derives_less_than_materialization_on_point_goals() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let db = chain_db(&mut fx, 64);
        let v0 = Cst(fx.i.get("v0").unwrap());
        let body = vec![Atom::new(fx.path, vec![Term::Const(v0), Term::Var(fx.y)])];
        let ans = query_demand(&db, &rules, &body, &[fx.y]).unwrap();
        assert_eq!(ans.rows.len(), 64);
        // Only the cone from v0 is derived: O(n) tuples, not O(n²).
        let mut full = db.clone();
        let full_stats = evaluate(&mut full, &rules).unwrap();
        assert!(
            ans.stats.derived < full_stats.derived / 4,
            "demand derived {} vs full {}",
            ans.stats.derived,
            full_stats.derived
        );
    }

    #[test]
    fn demand_does_not_mutate_the_base_database() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let db = chain_db(&mut fx, 8);
        let before = db.dump(&fx.i);
        let v0 = Cst(fx.i.get("v0").unwrap());
        let body = vec![Atom::new(fx.path, vec![Term::Const(v0), Term::Var(fx.y)])];
        query_demand(&db, &rules, &body, &[fx.y]).unwrap();
        assert_eq!(db.dump(&fx.i), before);
        assert!(db.relation(fx.path).is_none());
    }

    #[test]
    fn all_free_goal_falls_back_to_full_materialization() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let db = chain_db(&mut fx, 8);
        let body = vec![Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)])];
        let ans = query_demand(&db, &rules, &body, &[fx.x, fx.y]).unwrap();
        assert!(!ans.goal_directed);
        assert_eq!(ans.stats.magic_rules, 0);
        assert_eq!(
            sorted(ans.rows),
            materialized_answers(&db, &rules, &body, &[fx.x, fx.y])
        );
        // The fallback also leaves the base database untouched.
        assert!(db.relation(fx.path).is_none());
    }

    #[test]
    fn missing_predicate_goal_answers_empty() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let db = chain_db(&mut fx, 4);
        let ghost = Pred(fx.i.intern("Ghost"));
        let ans = query_demand(
            &db,
            &rules,
            &[Atom::new(ghost, vec![Term::Var(fx.x)])],
            &[fx.x],
        )
        .unwrap();
        assert!(!ans.goal_directed);
        assert!(ans.rows.is_empty());
    }

    #[test]
    fn edb_only_ground_goal_is_answered_without_evaluation() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let db = chain_db(&mut fx, 4);
        let v0 = Cst(fx.i.get("v0").unwrap());
        let v1 = Cst(fx.i.get("v1").unwrap());
        let ans = query_demand(
            &db,
            &rules,
            &[Atom::new(fx.edge, vec![Term::Const(v0), Term::Const(v1)])],
            &[],
        )
        .unwrap();
        assert!(!ans.goal_directed);
        assert_eq!(ans.rows, vec![Vec::<Cst>::new()]);
        // No fixpoint ran: nothing was derived anywhere.
        assert_eq!(ans.stats.derived, 0);
        assert_eq!(ans.stats.rounds, 0);
    }

    #[test]
    fn demand_is_byte_deterministic_across_thread_counts() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let db = chain_db(&mut fx, 32);
        let v0 = Cst(fx.i.get("v0").unwrap());
        let body = vec![Atom::new(fx.path, vec![Term::Const(v0), Term::Var(fx.y)])];
        let gov = Governor::default();
        // Force chunked parallel execution with a tiny threshold.
        let base = query_demand_tuned(&db, &rules, &body, &[fx.y], &gov, Some(1), Some(1)).unwrap();
        for threads in [2usize, 4, 8] {
            let ans = query_demand_tuned(&db, &rules, &body, &[fx.y], &gov, Some(threads), Some(1))
                .unwrap();
            assert_eq!(ans.rows, base.rows, "rows differ at {threads} threads");
            assert_eq!(ans.stats, base.stats, "stats differ at {threads} threads");
        }
    }

    #[test]
    fn demand_honors_the_governor_budget() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let db = chain_db(&mut fx, 32);
        let v0 = Cst(fx.i.get("v0").unwrap());
        let body = vec![Atom::new(fx.path, vec![Term::Const(v0), Term::Var(fx.y)])];
        let gov = Governor::new(Budget::default().with_max_rows(3));
        let err = query_demand_governed(&db, &rules, &body, &[fx.y], &gov).unwrap_err();
        assert!(matches!(
            err,
            EvalError::BudgetExhausted {
                resource: Resource::Rows,
                ..
            }
        ));
    }

    /// Differential property over the same random-program generator as the
    /// oracle test: goal-directed answers equal full materialization for
    /// randomly bound goals, across every fallback class.
    #[test]
    fn demand_matches_materialization_on_random_programs() {
        let mut i = Interner::new();
        let preds: Vec<Pred> = (0..4).map(|k| Pred(i.intern(&format!("P{k}")))).collect();
        let arity = [2usize, 1, 2, 2];
        let vars: Vec<Var> = (0..4).map(|k| Var(i.intern(&format!("x{k}")))).collect();
        let csts: Vec<Cst> = (0..6).map(|k| Cst(i.intern(&format!("c{k}")))).collect();
        for seed in 0..40u64 {
            let mut rng = Rng(seed.wrapping_mul(0xA076_1D64_78BD_642F) + 1);
            let mut rules = Vec::new();
            for _ in 0..(2 + rng.below(4)) {
                let nbody = 1 + rng.below(3);
                let body: Vec<Atom> = (0..nbody)
                    .map(|_| {
                        let p = rng.below(preds.len());
                        let args = (0..arity[p])
                            .map(|_| {
                                if rng.below(4) == 0 {
                                    Term::Const(csts[rng.below(csts.len())])
                                } else {
                                    Term::Var(vars[rng.below(vars.len())])
                                }
                            })
                            .collect();
                        Atom::new(preds[p], args)
                    })
                    .collect();
                let body_vars: Vec<Var> = body.iter().flat_map(Atom::vars).collect();
                let hp = rng.below(preds.len());
                let head_args = (0..arity[hp])
                    .map(|_| {
                        if body_vars.is_empty() || rng.below(5) == 0 {
                            Term::Const(csts[rng.below(csts.len())])
                        } else {
                            Term::Var(body_vars[rng.below(body_vars.len())])
                        }
                    })
                    .collect();
                rules.push(Rule::new(Atom::new(preds[hp], head_args), body));
            }
            let mut db = Database::new();
            for _ in 0..(3 + rng.below(10)) {
                let p = rng.below(preds.len());
                let row: Vec<Cst> = (0..arity[p]).map(|_| csts[rng.below(csts.len())]).collect();
                db.insert(preds[p], &row);
            }
            // Random goals: one or two atoms, arguments constant with
            // probability 1/2 so all adornment classes occur.
            for _ in 0..4 {
                let ngoal = 1 + rng.below(2);
                let body: Vec<Atom> = (0..ngoal)
                    .map(|_| {
                        let p = rng.below(preds.len());
                        let args = (0..arity[p])
                            .map(|_| {
                                if rng.below(2) == 0 {
                                    Term::Const(csts[rng.below(csts.len())])
                                } else {
                                    Term::Var(vars[rng.below(vars.len())])
                                }
                            })
                            .collect();
                        Atom::new(preds[p], args)
                    })
                    .collect();
                let out_vars: Vec<Var> = {
                    let mut vs: Vec<Var> = body.iter().flat_map(Atom::vars).collect();
                    vs.sort_unstable();
                    vs.dedup();
                    vs
                };
                let ans = query_demand(&db, &rules, &body, &out_vars).unwrap();
                assert_eq!(
                    sorted(ans.rows),
                    materialized_answers(&db, &rules, &body, &out_vars),
                    "seed {seed}: demand and materialization disagree"
                );
            }
        }
    }

    /// A resumed run whose relations grew far past the estimate baseline:
    /// the drift detector must flag the rule, the re-plan must flip the
    /// atom order, and every artifact (rows, stats, re-plan log) must be
    /// byte-identical at every thread count.
    #[test]
    fn drift_triggers_a_deterministic_replan() {
        let mut i = Interner::new();
        let dp = Pred(i.intern("D"));
        let ep = Pred(i.intern("E"));
        let rp = Pred(i.intern("R"));
        let (x, y, z) = (Var(i.intern("x")), Var(i.intern("y")), Var(i.intern("z")));
        // R(x,z) :- D(x,y), E(y,z).
        let rules = vec![Rule::new(
            Atom::new(rp, vec![Term::Var(x), Term::Var(z)]),
            vec![
                Atom::new(dp, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(ep, vec![Term::Var(y), Term::Var(z)]),
            ],
        )];
        let a = Cst(i.intern("a"));
        let b = Cst(i.intern("b"));
        let c = Cst(i.intern("c"));
        let hub = Cst(i.intern("hub"));
        let xs: Vec<Cst> = (0..1000).map(|k| Cst(i.intern(&format!("x{k}")))).collect();
        let ms: Vec<Cst> = (0..500).map(|k| Cst(i.intern(&format!("m{k}")))).collect();
        let zs: Vec<Cst> = (0..20).map(|k| Cst(i.intern(&format!("z{k}")))).collect();
        let run = |threads: usize| {
            let mut db = Database::new();
            db.insert(dp, &[a, b]);
            db.insert(ep, &[b, c]);
            let plan = DeltaPlan::planned(&rules, &db);
            let mut eval = IncrementalEval::new()
                .with_threads(threads)
                .with_parallel_threshold(1);
            // First run: tiny relations, and this snapshot becomes the
            // estimate baseline for the resumed run.
            eval.run(&mut db, &rules, &plan).unwrap();
            // Half of D funnels into `hub`, whose E bucket is 20 wide —
            // far past what the baseline stats predict.
            for (k, &xk) in xs.iter().enumerate() {
                let col1 = if k < 500 { hub } else { ms[k - 500] };
                db.insert(dp, &[xk, col1]);
            }
            for &zk in &zs {
                db.insert(ep, &[hub, zk]);
            }
            let stats = eval.run(&mut db, &rules, &plan).unwrap();
            (db.dump(&i), stats, eval.replan_history().to_vec())
        };
        let (rows1, stats1, log1) = run(1);
        assert_eq!(
            stats1.replans, 1,
            "drift should install exactly one re-plan"
        );
        assert_eq!(
            log1,
            vec![ReplanEvent {
                round: 2,
                rule: 0,
                old_order: vec![0, 1],
                new_order: vec![1, 0],
            }],
            "live stats make E-outermost the planned full order"
        );
        for threads in [2, 4, 8] {
            let (rows, stats, log) = run(threads);
            assert_eq!(rows, rows1, "rows diverged at {threads} threads");
            assert_eq!(stats, stats1, "stats diverged at {threads} threads");
            assert_eq!(log, log1, "re-plan log diverged at {threads} threads");
        }
    }

    /// Adaptive rounds group tasks whose compiled programs share a leading
    /// delta scan: the prefix runs once and fans out, cutting probes while
    /// leaving every row (and its merge position) untouched.
    #[test]
    fn shared_prefix_groups_reduce_probes_without_changing_rows() {
        let mut fx = fixture();
        let q = Pred(fx.i.intern("Q"));
        let mut rules = transitive_closure_rules(&fx);
        // A second consumer of delta Path rows, structurally sharing the
        // recursive rule's leading compiled Path scan.
        rules.push(Rule::new(
            Atom::new(q, vec![Term::Var(fx.x), Term::Var(fx.y)]),
            vec![Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)])],
        ));
        let plan = DeltaPlan::new(&rules);
        let mut run = |adaptive: bool, threads: usize| {
            let mut db = chain_db(&mut fx, 24);
            let mut eval = IncrementalEval::new()
                .with_adaptive(adaptive)
                .with_threads(threads)
                .with_parallel_threshold(1);
            let stats = eval.run(&mut db, &rules, &plan).unwrap();
            (db.dump(&fx.i), stats)
        };
        let (rows_off, off) = run(false, 1);
        let (rows_on, on) = run(true, 1);
        assert_eq!(rows_on, rows_off, "grouping changed the fixpoint");
        assert_eq!(off.shared_prefix_hits, 0);
        assert!(
            on.shared_prefix_hits > 0,
            "delta Path rounds should fan out a shared prefix"
        );
        assert!(
            on.join_probes < off.join_probes,
            "shared prefix should save probes ({} vs {})",
            on.join_probes,
            off.join_probes
        );
        for threads in [2, 4, 8] {
            let (rows, stats) = run(true, threads);
            assert_eq!(rows, rows_on, "rows diverged at {threads} threads");
            assert_eq!(stats, on, "stats diverged at {threads} threads");
        }
    }
}
