//! Naive and semi-naive bottom-up evaluation.
//!
//! [`evaluate`] runs semi-naive iteration: in every round each rule is
//! evaluated once per body atom, with that atom restricted to the tuples
//! derived in the previous round (the delta) — a derivation is only
//! attempted if it could not have been made before. [`evaluate_naive`]
//! re-derives everything each round and exists as a differential-testing
//! oracle and as the textbook baseline.

use crate::rel::{Database, Tuple};
use crate::rule::{Atom, Rule, Term};
use fundb_term::{Cst, FxHashMap, Var};

/// Counters reported by evaluation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint rounds (including the final no-change round).
    pub rounds: usize,
    /// Number of new facts derived (excluding the initial database).
    pub derived: usize,
}

/// Evaluates `rules` over `db` to the least fixpoint, semi-naively.
pub fn evaluate(db: &mut Database, rules: &[Rule]) -> EvalStats {
    let mut stats = EvalStats::default();
    // Low-water marks: per predicate, the row count at the start of the
    // previous round. Tuples at index ≥ mark form the delta.
    let mut marks: FxHashMap<fundb_term::Pred, usize> = FxHashMap::default();
    let mut first_round = true;

    loop {
        stats.rounds += 1;
        // Snapshot current row counts: everything beyond `marks` is delta.
        let mut buffer: Vec<(fundb_term::Pred, Tuple)> = Vec::new();

        for rule in rules {
            if rule.body.is_empty() {
                if first_round {
                    let mut subst = FxHashMap::default();
                    fire_head(rule, &mut subst, &mut buffer);
                }
                continue;
            }
            if first_round {
                // Every atom reads the full database exactly once.
                join_from(db, rule, 0, None, &marks, &mut buffer);
            } else {
                // One pass per delta position.
                for delta_idx in 0..rule.body.len() {
                    join_from(db, rule, 0, Some(delta_idx), &marks, &mut buffer);
                }
            }
        }

        // Advance marks to the end of the pre-insertion rows.
        for (p, rel) in db.iter() {
            marks.insert(p, rel.len());
        }

        let mut changed = false;
        for (p, t) in buffer {
            if db.insert(p, t) {
                changed = true;
                stats.derived += 1;
            }
        }
        first_round = false;
        if !changed {
            return stats;
        }
    }
}

/// Evaluates `rules` naively (full re-derivation each round). Same fixpoint
/// as [`evaluate`]; used as an oracle.
pub fn evaluate_naive(db: &mut Database, rules: &[Rule]) -> EvalStats {
    let mut stats = EvalStats::default();
    loop {
        stats.rounds += 1;
        let mut buffer = Vec::new();
        for rule in rules {
            if rule.body.is_empty() {
                let mut subst = FxHashMap::default();
                fire_head(rule, &mut subst, &mut buffer);
            } else {
                join_from(db, rule, 0, None, &FxHashMap::default(), &mut buffer);
            }
        }
        let mut changed = false;
        for (p, t) in buffer {
            if db.insert(p, t) {
                changed = true;
                stats.derived += 1;
            }
        }
        if !changed {
            return stats;
        }
    }
}

/// Evaluates the conjunctive query `body` over `db` and returns the distinct
/// bindings of `out_vars`, in derivation order.
pub fn query(db: &Database, body: &[Atom], out_vars: &[Var]) -> Vec<Vec<Cst>> {
    let mut out: Vec<Vec<Cst>> = Vec::new();
    let mut seen: fundb_term::FxHashSet<Vec<Cst>> = fundb_term::FxHashSet::default();
    let mut subst = FxHashMap::default();
    query_rec(db, body, 0, &mut subst, &mut |s| {
        let row: Vec<Cst> = out_vars
            .iter()
            .map(|v| *s.get(v).expect("query output variable unbound by body"))
            .collect();
        if seen.insert(row.clone()) {
            out.push(row);
        }
    });
    out
}

fn query_rec(
    db: &Database,
    body: &[Atom],
    idx: usize,
    subst: &mut FxHashMap<Var, Cst>,
    emit: &mut dyn FnMut(&FxHashMap<Var, Cst>),
) {
    if idx == body.len() {
        emit(subst);
        return;
    }
    let atom = &body[idx];
    let Some(rel) = db.relation(atom.pred) else {
        return;
    };
    // Materialize matching rows up-front so `subst` can be mutated freely.
    let pattern: Vec<Option<Cst>> = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => subst.get(v).copied(),
        })
        .collect();
    let matches: Vec<&Tuple> = rel.select(&pattern).collect();
    for row in matches {
        let mut bound = Vec::new();
        let mut ok = true;
        for (t, v) in atom.args.iter().zip(row.iter()) {
            if let Term::Var(var) = t {
                match subst.get(var) {
                    Some(&existing) => {
                        if existing != *v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(*var, *v);
                        bound.push(*var);
                    }
                }
            }
        }
        if ok {
            query_rec(db, body, idx + 1, subst, emit);
        }
        for var in bound {
            subst.remove(&var);
        }
    }
}

/// Recursive join over the rule body; when `delta_idx` is `Some(j)`, atom `j`
/// ranges only over the delta rows of its relation (rows past the mark).
fn join_from(
    db: &Database,
    rule: &Rule,
    idx: usize,
    delta_idx: Option<usize>,
    marks: &FxHashMap<fundb_term::Pred, usize>,
    out: &mut Vec<(fundb_term::Pred, Tuple)>,
) {
    let mut subst = FxHashMap::default();
    join_rec(db, rule, idx, delta_idx, marks, &mut subst, out);
}

fn join_rec(
    db: &Database,
    rule: &Rule,
    idx: usize,
    delta_idx: Option<usize>,
    marks: &FxHashMap<fundb_term::Pred, usize>,
    subst: &mut FxHashMap<Var, Cst>,
    out: &mut Vec<(fundb_term::Pred, Tuple)>,
) {
    if idx == rule.body.len() {
        fire_head(rule, subst, out);
        return;
    }
    let atom = &rule.body[idx];
    let Some(rel) = db.relation(atom.pred) else {
        return;
    };
    // Delta atoms scan the (short) fresh suffix; other atoms go through the
    // indexed selection with the bindings established so far.
    let rows: Vec<&Tuple> = if delta_idx == Some(idx) {
        rel.rows_from(marks.get(&atom.pred).copied().unwrap_or(0))
            .iter()
            .collect()
    } else {
        let pattern: Vec<Option<Cst>> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => Some(*c),
                Term::Var(v) => subst.get(v).copied(),
            })
            .collect();
        rel.select(&pattern).collect()
    };
    for row in rows {
        let mut bound = smallvec_like();
        let mut ok = true;
        for (t, v) in atom.args.iter().zip(row.iter()) {
            match t {
                Term::Const(c) => {
                    if c != v {
                        ok = false;
                        break;
                    }
                }
                Term::Var(var) => match subst.get(var) {
                    Some(&existing) => {
                        if existing != *v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(*var, *v);
                        bound.push(*var);
                    }
                },
            }
        }
        if ok {
            join_rec(db, rule, idx + 1, delta_idx, marks, subst, out);
        }
        for var in bound {
            subst.remove(&var);
        }
    }
}

fn fire_head(
    rule: &Rule,
    subst: &mut FxHashMap<Var, Cst>,
    out: &mut Vec<(fundb_term::Pred, Tuple)>,
) {
    out.push((rule.head.pred, rule.head.ground(subst)));
}

/// Tiny inline buffer for per-atom freshly-bound variables (atoms rarely
/// bind more than a handful).
fn smallvec_like() -> Vec<Var> {
    Vec::with_capacity(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_term::{Interner, Pred};

    struct Fixture {
        i: Interner,
        edge: Pred,
        path: Pred,
        x: Var,
        y: Var,
        z: Var,
    }

    fn fixture() -> Fixture {
        let mut i = Interner::new();
        let edge = Pred(i.intern("Edge"));
        let path = Pred(i.intern("Path"));
        let x = Var(i.intern("x"));
        let y = Var(i.intern("y"));
        let z = Var(i.intern("z"));
        Fixture {
            i,
            edge,
            path,
            x,
            y,
            z,
        }
    }

    fn transitive_closure_rules(fx: &Fixture) -> Vec<Rule> {
        vec![
            // Edge(x,y) → Path(x,y)
            Rule::new(
                Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                vec![Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)])],
            ),
            // Path(x,y), Edge(y,z) → Path(x,z)
            Rule::new(
                Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.z)]),
                vec![
                    Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                    Atom::new(fx.edge, vec![Term::Var(fx.y), Term::Var(fx.z)]),
                ],
            ),
        ]
    }

    fn chain_db(fx: &mut Fixture, n: usize) -> Database {
        let mut db = Database::new();
        let nodes: Vec<Cst> = (0..=n)
            .map(|k| Cst(fx.i.intern(&format!("v{k}"))))
            .collect();
        for w in nodes.windows(2) {
            db.insert(fx.edge, vec![w[0], w[1]].into_boxed_slice());
        }
        db
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 10);
        evaluate(&mut db, &rules);
        // Path has n*(n+1)/2 pairs for a chain of n edges.
        assert_eq!(db.relation(fx.path).unwrap().len(), 10 * 11 / 2);
    }

    #[test]
    fn semi_naive_matches_naive() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db1 = chain_db(&mut fx, 8);
        let mut db2 = db1.clone();
        evaluate(&mut db1, &rules);
        evaluate_naive(&mut db2, &rules);
        assert_eq!(db1.dump(&fx.i), db2.dump(&fx.i));
    }

    #[test]
    fn semi_naive_derives_each_fact_once_on_chain() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 12);
        let stats = evaluate(&mut db, &rules);
        assert_eq!(stats.derived, 12 * 13 / 2);
    }

    #[test]
    fn facts_as_empty_body_rules_fire_once() {
        let mut fx = fixture();
        let a = Cst(fx.i.intern("a"));
        let rules = vec![Rule::new(
            Atom::new(fx.edge, vec![Term::Const(a), Term::Const(a)]),
            vec![],
        )];
        let mut db = Database::new();
        let stats = evaluate(&mut db, &rules);
        assert_eq!(stats.derived, 1);
        assert!(db.contains(fx.edge, &[a, a]));
    }

    #[test]
    fn query_binds_and_dedups() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 4);
        evaluate(&mut db, &rules);
        let v0 = Cst(fx.i.intern("v0"));
        // {y : Path(v0, y)}
        let body = vec![Atom::new(fx.path, vec![Term::Const(v0), Term::Var(fx.y)])];
        let rows = query(&db, &body, &[fx.y]);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn query_joins_shared_variables() {
        let mut fx = fixture();
        let mut db = chain_db(&mut fx, 3);
        evaluate(&mut db, &transitive_closure_rules(&fx));
        // {x : Edge(x,y), Edge(y,z)} — x with an outgoing 2-step path.
        let body = vec![
            Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)]),
            Atom::new(fx.edge, vec![Term::Var(fx.y), Term::Var(fx.z)]),
        ];
        let rows = query(&db, &body, &[fx.x]);
        assert_eq!(rows.len(), 2); // v0 and v1
    }

    #[test]
    fn query_on_missing_predicate_is_empty() {
        let fx = fixture();
        let db = Database::new();
        let body = vec![Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)])];
        assert!(query(&db, &body, &[fx.x]).is_empty());
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = Database::new();
        let nodes: Vec<Cst> = (0..5).map(|k| Cst(fx.i.intern(&format!("c{k}")))).collect();
        for k in 0..5 {
            db.insert(
                fx.edge,
                vec![nodes[k], nodes[(k + 1) % 5]].into_boxed_slice(),
            );
        }
        evaluate(&mut db, &rules);
        assert_eq!(db.relation(fx.path).unwrap().len(), 25);
    }
}
