//! Naive and semi-naive bottom-up evaluation.
//!
//! [`evaluate`] runs semi-naive iteration: in every round each rule is
//! evaluated once per body atom, with that atom restricted to the tuples
//! derived in the previous round (the delta) — a derivation is only
//! attempted if it could not have been made before. [`IncrementalEval`]
//! extends this across calls: it keeps the per-predicate low-water marks
//! between runs, so a caller can insert new facts into an already-saturated
//! database and resume the fixpoint from just those facts, driven by a
//! [`DeltaPlan`] that maps each predicate to the rule positions that can
//! consume it. [`evaluate_naive`] re-derives everything each round and
//! exists as a differential-testing oracle and as the textbook baseline.

use crate::rel::{Database, Tuple};
use crate::rule::{Atom, Rule, Term};
use fundb_term::{Cst, FxHashMap, Pred, Var};

/// Counters reported by evaluation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Number of fixpoint rounds (including the final no-change round).
    pub rounds: usize,
    /// Number of new facts derived (excluding the initial database).
    pub derived: usize,
    /// Number of candidate rows enumerated by body-atom scans.
    pub join_probes: usize,
    /// Number of selections answered through a per-column index.
    pub index_hits: usize,
}

impl EvalStats {
    /// Accumulates another run's counters into `self`.
    pub fn absorb(&mut self, other: EvalStats) {
        self.rounds += other.rounds;
        self.derived += other.derived;
        self.join_probes += other.join_probes;
        self.index_hits += other.index_hits;
    }
}

/// A predicate-argument index over a rule set: for each predicate, the
/// `(rule, body position)` pairs that can consume a new fact of that
/// predicate. Semi-naive rounds only re-run those positions, so rules
/// without a delta-matching subgoal are never touched.
#[derive(Clone, Debug, Default)]
pub struct DeltaPlan {
    by_pred: FxHashMap<Pred, Vec<(u32, u32)>>,
}

impl DeltaPlan {
    /// Builds the plan for a rule set.
    pub fn new(rules: &[Rule]) -> DeltaPlan {
        let mut by_pred: FxHashMap<Pred, Vec<(u32, u32)>> = FxHashMap::default();
        for (ri, rule) in rules.iter().enumerate() {
            for (ai, atom) in rule.body.iter().enumerate() {
                by_pred
                    .entry(atom.pred)
                    .or_default()
                    .push((ri as u32, ai as u32));
            }
        }
        DeltaPlan { by_pred }
    }

    /// The `(rule, body position)` pairs that consume facts of `p`.
    pub fn positions(&self, p: Pred) -> &[(u32, u32)] {
        self.by_pred.get(&p).map_or(&[], Vec::as_slice)
    }
}

/// A resumable semi-naive fixpoint: owns the low-water marks of one
/// database, so [`IncrementalEval::run`] can be called repeatedly as the
/// caller injects new facts, re-deriving only their consequences.
#[derive(Clone, Debug, Default)]
pub struct IncrementalEval {
    marks: FxHashMap<Pred, usize>,
    started: bool,
}

impl IncrementalEval {
    /// A fresh evaluation (first `run` performs the full initial round).
    pub fn new() -> IncrementalEval {
        IncrementalEval::default()
    }

    /// Runs the fixpoint to saturation and returns this run's counters.
    ///
    /// The first call evaluates every rule over the whole database (and
    /// fires empty-body rules); later calls treat rows inserted since the
    /// previous call as the delta and only re-run the plan positions that
    /// can see them. The caller must pass the same `rules`/`plan` pair on
    /// every call.
    pub fn run(&mut self, db: &mut Database, rules: &[Rule], plan: &DeltaPlan) -> EvalStats {
        let mut stats = EvalStats::default();
        let mut first = !self.started;
        self.started = true;
        loop {
            stats.rounds += 1;
            let mut buffer: Vec<(Pred, Tuple)> = Vec::new();

            if first {
                for rule in rules {
                    if rule.body.is_empty() {
                        let mut subst = FxHashMap::default();
                        fire_head(rule, &mut subst, &mut buffer);
                    } else {
                        // Every atom reads the full database exactly once.
                        join_from(db, rule, 0, None, &self.marks, &mut buffer, &mut stats);
                    }
                }
            } else {
                // Only the rule positions whose predicate has fresh rows.
                let mut work: Vec<(u32, u32)> = Vec::new();
                for (p, rel) in db.iter() {
                    if rel.len() > self.marks.get(&p).copied().unwrap_or(0) {
                        work.extend_from_slice(plan.positions(p));
                    }
                }
                if work.is_empty() {
                    return stats;
                }
                work.sort_unstable();
                work.dedup();
                for (ri, ai) in work {
                    join_from(
                        db,
                        &rules[ri as usize],
                        0,
                        Some(ai as usize),
                        &self.marks,
                        &mut buffer,
                        &mut stats,
                    );
                }
            }

            // Advance marks to the end of the pre-insertion rows.
            for (p, rel) in db.iter() {
                self.marks.insert(p, rel.len());
            }

            let mut changed = false;
            for (p, t) in buffer {
                if db.insert(p, t) {
                    changed = true;
                    stats.derived += 1;
                }
            }
            first = false;
            if !changed {
                return stats;
            }
        }
    }
}

/// Evaluates `rules` over `db` to the least fixpoint, semi-naively.
pub fn evaluate(db: &mut Database, rules: &[Rule]) -> EvalStats {
    let plan = DeltaPlan::new(rules);
    IncrementalEval::new().run(db, rules, &plan)
}

/// Evaluates `rules` naively (full re-derivation each round). Same fixpoint
/// as [`evaluate`]; used as an oracle.
pub fn evaluate_naive(db: &mut Database, rules: &[Rule]) -> EvalStats {
    let mut stats = EvalStats::default();
    loop {
        stats.rounds += 1;
        let mut buffer = Vec::new();
        for rule in rules {
            if rule.body.is_empty() {
                let mut subst = FxHashMap::default();
                fire_head(rule, &mut subst, &mut buffer);
            } else {
                join_from(
                    db,
                    rule,
                    0,
                    None,
                    &FxHashMap::default(),
                    &mut buffer,
                    &mut stats,
                );
            }
        }
        let mut changed = false;
        for (p, t) in buffer {
            if db.insert(p, t) {
                changed = true;
                stats.derived += 1;
            }
        }
        if !changed {
            return stats;
        }
    }
}

/// Evaluates the conjunctive query `body` over `db` and returns the distinct
/// bindings of `out_vars`, in derivation order.
pub fn query(db: &Database, body: &[Atom], out_vars: &[Var]) -> Vec<Vec<Cst>> {
    let mut out: Vec<Vec<Cst>> = Vec::new();
    let mut seen: fundb_term::FxHashSet<Vec<Cst>> = fundb_term::FxHashSet::default();
    let mut subst = FxHashMap::default();
    query_rec(db, body, 0, &mut subst, &mut |s| {
        let row: Vec<Cst> = out_vars
            .iter()
            .map(|v| *s.get(v).expect("query output variable unbound by body"))
            .collect();
        if seen.insert(row.clone()) {
            out.push(row);
        }
    });
    out
}

fn query_rec(
    db: &Database,
    body: &[Atom],
    idx: usize,
    subst: &mut FxHashMap<Var, Cst>,
    emit: &mut dyn FnMut(&FxHashMap<Var, Cst>),
) {
    if idx == body.len() {
        emit(subst);
        return;
    }
    let atom = &body[idx];
    let Some(rel) = db.relation(atom.pred) else {
        return;
    };
    // Materialize matching rows up-front so `subst` can be mutated freely.
    let pattern: Vec<Option<Cst>> = atom
        .args
        .iter()
        .map(|t| match t {
            Term::Const(c) => Some(*c),
            Term::Var(v) => subst.get(v).copied(),
        })
        .collect();
    let matches: Vec<&Tuple> = rel.select(&pattern).collect();
    for row in matches {
        let mut bound = Vec::new();
        let mut ok = true;
        for (t, v) in atom.args.iter().zip(row.iter()) {
            if let Term::Var(var) = t {
                match subst.get(var) {
                    Some(&existing) => {
                        if existing != *v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(*var, *v);
                        bound.push(*var);
                    }
                }
            }
        }
        if ok {
            query_rec(db, body, idx + 1, subst, emit);
        }
        for var in bound {
            subst.remove(&var);
        }
    }
}

/// Recursive join over the rule body; when `delta_idx` is `Some(j)`, atom `j`
/// ranges only over the delta rows of its relation (rows past the mark).
#[allow(clippy::too_many_arguments)]
fn join_from(
    db: &Database,
    rule: &Rule,
    idx: usize,
    delta_idx: Option<usize>,
    marks: &FxHashMap<fundb_term::Pred, usize>,
    out: &mut Vec<(fundb_term::Pred, Tuple)>,
    stats: &mut EvalStats,
) {
    let mut subst = FxHashMap::default();
    join_rec(db, rule, idx, delta_idx, marks, &mut subst, out, stats);
}

#[allow(clippy::too_many_arguments)]
fn join_rec(
    db: &Database,
    rule: &Rule,
    idx: usize,
    delta_idx: Option<usize>,
    marks: &FxHashMap<fundb_term::Pred, usize>,
    subst: &mut FxHashMap<Var, Cst>,
    out: &mut Vec<(fundb_term::Pred, Tuple)>,
    stats: &mut EvalStats,
) {
    if idx == rule.body.len() {
        fire_head(rule, subst, out);
        return;
    }
    let atom = &rule.body[idx];
    let Some(rel) = db.relation(atom.pred) else {
        return;
    };
    // Delta atoms scan the (short) fresh suffix; other atoms go through the
    // indexed selection with the bindings established so far.
    let rows: Vec<&Tuple> = if delta_idx == Some(idx) {
        rel.rows_from(marks.get(&atom.pred).copied().unwrap_or(0))
            .iter()
            .collect()
    } else {
        let pattern: Vec<Option<Cst>> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => Some(*c),
                Term::Var(v) => subst.get(v).copied(),
            })
            .collect();
        if pattern.iter().any(Option::is_some) {
            stats.index_hits += 1;
        }
        rel.select(&pattern).collect()
    };
    stats.join_probes += rows.len();
    for row in rows {
        let mut bound = smallvec_like();
        let mut ok = true;
        for (t, v) in atom.args.iter().zip(row.iter()) {
            match t {
                Term::Const(c) => {
                    if c != v {
                        ok = false;
                        break;
                    }
                }
                Term::Var(var) => match subst.get(var) {
                    Some(&existing) => {
                        if existing != *v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(*var, *v);
                        bound.push(*var);
                    }
                },
            }
        }
        if ok {
            join_rec(db, rule, idx + 1, delta_idx, marks, subst, out, stats);
        }
        for var in bound {
            subst.remove(&var);
        }
    }
}

fn fire_head(
    rule: &Rule,
    subst: &mut FxHashMap<Var, Cst>,
    out: &mut Vec<(fundb_term::Pred, Tuple)>,
) {
    out.push((rule.head.pred, rule.head.ground(subst)));
}

/// Tiny inline buffer for per-atom freshly-bound variables (atoms rarely
/// bind more than a handful).
fn smallvec_like() -> Vec<Var> {
    Vec::with_capacity(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_term::{Interner, Pred};

    struct Fixture {
        i: Interner,
        edge: Pred,
        path: Pred,
        x: Var,
        y: Var,
        z: Var,
    }

    fn fixture() -> Fixture {
        let mut i = Interner::new();
        let edge = Pred(i.intern("Edge"));
        let path = Pred(i.intern("Path"));
        let x = Var(i.intern("x"));
        let y = Var(i.intern("y"));
        let z = Var(i.intern("z"));
        Fixture {
            i,
            edge,
            path,
            x,
            y,
            z,
        }
    }

    fn transitive_closure_rules(fx: &Fixture) -> Vec<Rule> {
        vec![
            // Edge(x,y) → Path(x,y)
            Rule::new(
                Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                vec![Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)])],
            ),
            // Path(x,y), Edge(y,z) → Path(x,z)
            Rule::new(
                Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.z)]),
                vec![
                    Atom::new(fx.path, vec![Term::Var(fx.x), Term::Var(fx.y)]),
                    Atom::new(fx.edge, vec![Term::Var(fx.y), Term::Var(fx.z)]),
                ],
            ),
        ]
    }

    fn chain_db(fx: &mut Fixture, n: usize) -> Database {
        let mut db = Database::new();
        let nodes: Vec<Cst> = (0..=n)
            .map(|k| Cst(fx.i.intern(&format!("v{k}"))))
            .collect();
        for w in nodes.windows(2) {
            db.insert(fx.edge, vec![w[0], w[1]].into_boxed_slice());
        }
        db
    }

    #[test]
    fn transitive_closure_of_a_chain() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 10);
        evaluate(&mut db, &rules);
        // Path has n*(n+1)/2 pairs for a chain of n edges.
        assert_eq!(db.relation(fx.path).unwrap().len(), 10 * 11 / 2);
    }

    #[test]
    fn semi_naive_matches_naive() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db1 = chain_db(&mut fx, 8);
        let mut db2 = db1.clone();
        evaluate(&mut db1, &rules);
        evaluate_naive(&mut db2, &rules);
        assert_eq!(db1.dump(&fx.i), db2.dump(&fx.i));
    }

    #[test]
    fn semi_naive_derives_each_fact_once_on_chain() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 12);
        let stats = evaluate(&mut db, &rules);
        assert_eq!(stats.derived, 12 * 13 / 2);
    }

    #[test]
    fn facts_as_empty_body_rules_fire_once() {
        let mut fx = fixture();
        let a = Cst(fx.i.intern("a"));
        let rules = vec![Rule::new(
            Atom::new(fx.edge, vec![Term::Const(a), Term::Const(a)]),
            vec![],
        )];
        let mut db = Database::new();
        let stats = evaluate(&mut db, &rules);
        assert_eq!(stats.derived, 1);
        assert!(db.contains(fx.edge, &[a, a]));
    }

    #[test]
    fn query_binds_and_dedups() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 4);
        evaluate(&mut db, &rules);
        let v0 = Cst(fx.i.intern("v0"));
        // {y : Path(v0, y)}
        let body = vec![Atom::new(fx.path, vec![Term::Const(v0), Term::Var(fx.y)])];
        let rows = query(&db, &body, &[fx.y]);
        assert_eq!(rows.len(), 4);
    }

    #[test]
    fn query_joins_shared_variables() {
        let mut fx = fixture();
        let mut db = chain_db(&mut fx, 3);
        evaluate(&mut db, &transitive_closure_rules(&fx));
        // {x : Edge(x,y), Edge(y,z)} — x with an outgoing 2-step path.
        let body = vec![
            Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)]),
            Atom::new(fx.edge, vec![Term::Var(fx.y), Term::Var(fx.z)]),
        ];
        let rows = query(&db, &body, &[fx.x]);
        assert_eq!(rows.len(), 2); // v0 and v1
    }

    #[test]
    fn query_on_missing_predicate_is_empty() {
        let fx = fixture();
        let db = Database::new();
        let body = vec![Atom::new(fx.edge, vec![Term::Var(fx.x), Term::Var(fx.y)])];
        assert!(query(&db, &body, &[fx.x]).is_empty());
    }

    #[test]
    fn resume_derives_only_consequences_of_new_facts() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        let mut db = chain_db(&mut fx, 10);
        let mut eval = IncrementalEval::new();
        let first = eval.run(&mut db, &rules, &plan);
        assert_eq!(first.derived, 10 * 11 / 2);

        // Resuming a saturated database is a no-op.
        let idle = eval.run(&mut db, &rules, &plan);
        assert_eq!(idle.derived, 0);
        assert_eq!(idle.join_probes, 0);

        // Extend the chain by one edge: v10 → v11.
        let v10 = Cst(fx.i.intern("v10"));
        let v11 = Cst(fx.i.intern("v11"));
        db.insert(fx.edge, vec![v10, v11].into_boxed_slice());
        let resumed = eval.run(&mut db, &rules, &plan);
        // Exactly the 11 new paths ending at v11, nothing re-derived.
        assert_eq!(resumed.derived, 11);
        assert_eq!(db.relation(fx.path).unwrap().len(), 11 * 12 / 2);

        // The resumed result matches a from-scratch evaluation.
        let mut fresh = chain_db(&mut fx, 11);
        evaluate(&mut fresh, &rules);
        assert_eq!(db.dump(&fx.i), fresh.dump(&fx.i));
    }

    #[test]
    fn delta_plan_maps_predicates_to_positions() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let plan = DeltaPlan::new(&rules);
        // Edge appears in rule 0 position 0 and rule 1 position 1.
        assert_eq!(plan.positions(fx.edge), &[(0, 0), (1, 1)]);
        // Path appears only in rule 1 position 0.
        assert_eq!(plan.positions(fx.path), &[(1, 0)]);
        // Unknown predicates have no positions.
        let ghost = Pred(fx.i.intern("Ghost"));
        assert!(plan.positions(ghost).is_empty());
    }

    #[test]
    fn probe_and_index_counters_move() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = chain_db(&mut fx, 6);
        let stats = evaluate(&mut db, &rules);
        assert!(stats.join_probes > 0);
        // The recursive rule joins Edge on a bound column every round.
        assert!(stats.index_hits > 0);
    }

    #[test]
    fn empty_body_rules_do_not_refire_on_resume() {
        let mut fx = fixture();
        let a = Cst(fx.i.intern("a"));
        let rules = vec![Rule::new(
            Atom::new(fx.edge, vec![Term::Const(a), Term::Const(a)]),
            vec![],
        )];
        let plan = DeltaPlan::new(&rules);
        let mut db = Database::new();
        let mut eval = IncrementalEval::new();
        assert_eq!(eval.run(&mut db, &rules, &plan).derived, 1);
        assert_eq!(eval.run(&mut db, &rules, &plan).derived, 0);
    }

    #[test]
    fn cyclic_graph_terminates() {
        let mut fx = fixture();
        let rules = transitive_closure_rules(&fx);
        let mut db = Database::new();
        let nodes: Vec<Cst> = (0..5).map(|k| Cst(fx.i.intern(&format!("c{k}")))).collect();
        for k in 0..5 {
            db.insert(
                fx.edge,
                vec![nodes[k], nodes[(k + 1) % 5]].into_boxed_slice(),
            );
        }
        evaluate(&mut db, &rules);
        assert_eq!(db.relation(fx.path).unwrap().len(), 25);
    }
}
