//! Derivation provenance: why is a fact in the fixpoint?
//!
//! [`evaluate_traced`] runs the same semi-naive fixpoint as
//! [`crate::evaluate`] while recording, for every *first* derivation of a
//! fact, the rule index and the grounded body facts that produced it.
//! [`Provenance::explain`] then reconstructs a finite derivation tree
//! bottoming out in database (EDB) facts — well-founded because each
//! recorded premise was inserted strictly before its conclusion.

use crate::engine::EvalStats;
use crate::governor::{EvalError, Governor, Resource};
use crate::rel::{Database, Tuple};
use crate::rule::{Atom, Rule, Term};
use fundb_term::{Cst, FxHashMap, Interner, Pred, Var};

/// A recorded justification: which rule fired with which ground premises.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Justification {
    /// Index of the rule in the evaluated rule set.
    pub rule: usize,
    /// The grounded body facts.
    pub premises: Vec<(Pred, Tuple)>,
}

/// First-derivation provenance for a fixpoint computation.
#[derive(Clone, Debug, Default)]
pub struct Provenance {
    why: FxHashMap<(Pred, Tuple), Justification>,
}

/// A derivation tree for one fact.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Derivation {
    /// The derived (or given) fact.
    pub fact: (Pred, Tuple),
    /// The rule used, or `None` for a database fact.
    pub rule: Option<usize>,
    /// Sub-derivations of the premises (empty for database facts).
    pub premises: Vec<Derivation>,
}

impl Provenance {
    /// The justification recorded for a fact, if it was derived (rather
    /// than given).
    pub fn why(&self, pred: Pred, tuple: &[Cst]) -> Option<&Justification> {
        self.why.get(&(pred, tuple.into()))
    }

    /// Reconstructs the full derivation tree of a fact. Returns `None` if
    /// the fact is not in the database at all; facts without a recorded
    /// justification are EDB leaves.
    pub fn explain(&self, db: &Database, pred: Pred, tuple: &[Cst]) -> Option<Derivation> {
        if !db.contains(pred, tuple) {
            return None;
        }
        Some(self.explain_known(pred, tuple))
    }

    fn explain_known(&self, pred: Pred, tuple: &[Cst]) -> Derivation {
        match self.why(pred, tuple) {
            None => Derivation {
                fact: (pred, tuple.into()),
                rule: None,
                premises: Vec::new(),
            },
            Some(just) => Derivation {
                fact: (pred, tuple.into()),
                rule: Some(just.rule),
                premises: just
                    .premises
                    .iter()
                    .map(|(p, t)| self.explain_known(*p, t))
                    .collect(),
            },
        }
    }

    /// Renders a derivation tree as an indented proof, for humans.
    pub fn render(d: &Derivation, interner: &Interner) -> String {
        fn go(d: &Derivation, interner: &Interner, depth: usize, out: &mut String) {
            let indent = "  ".repeat(depth);
            let args = d
                .fact
                .1
                .iter()
                .map(|c| interner.resolve(c.sym()))
                .collect::<Vec<_>>()
                .join(",");
            let how = match d.rule {
                Some(r) => format!("by rule {r}"),
                None => "given".to_string(),
            };
            out.push_str(&format!(
                "{indent}{}({args})   [{how}]\n",
                interner.resolve(d.fact.0.sym())
            ));
            for p in &d.premises {
                go(p, interner, depth + 1, out);
            }
        }
        let mut out = String::new();
        go(d, interner, 0, &mut out);
        out
    }
}

/// Semi-naive evaluation that records first derivations.
pub fn evaluate_traced(
    db: &mut Database,
    rules: &[Rule],
) -> Result<(EvalStats, Provenance), EvalError> {
    evaluate_traced_governed(db, rules, &Governor::default())
}

/// [`evaluate_traced`] under an explicit governor. The tracing loop is
/// interpreted, so budgets and cancellation are enforced at round
/// boundaries and in the merge loop (no probe-level checks here).
pub fn evaluate_traced_governed(
    db: &mut Database,
    rules: &[Rule],
    governor: &Governor,
) -> Result<(EvalStats, Provenance), EvalError> {
    let mut stats = EvalStats::default();
    let mut prov = Provenance::default();
    let mut marks: FxHashMap<Pred, usize> = FxHashMap::default();
    let mut first_round = true;

    loop {
        let committed = stats;
        if let Err(resource) = governor.begin_round() {
            governor.abort_round();
            return Err(EvalError::BudgetExhausted {
                resource,
                partial: committed,
            });
        }
        if let Some(limit) = governor.max_bytes() {
            if db.approx_bytes() > limit {
                governor.abort_round();
                return Err(EvalError::BudgetExhausted {
                    resource: Resource::Bytes,
                    partial: committed,
                });
            }
        }
        stats.rounds += 1;
        let mut buffer: Vec<(Pred, Tuple, Justification)> = Vec::new();

        for (ri, rule) in rules.iter().enumerate() {
            if rule.body.is_empty() {
                if first_round {
                    let subst = FxHashMap::default();
                    buffer.push((
                        rule.head.pred,
                        rule.head.ground(&subst),
                        Justification {
                            rule: ri,
                            premises: Vec::new(),
                        },
                    ));
                }
                continue;
            }
            let deltas: Vec<Option<usize>> = if first_round {
                vec![None]
            } else {
                (0..rule.body.len()).map(Some).collect()
            };
            for delta_idx in deltas {
                let mut subst: FxHashMap<Var, Cst> = FxHashMap::default();
                trace_join(db, rule, ri, 0, delta_idx, &marks, &mut subst, &mut buffer);
            }
        }

        for (p, rel) in db.iter() {
            marks.insert(p, rel.len());
        }

        let mut changed = false;
        for (p, t, just) in buffer {
            if db.insert_derived(p, &t) {
                changed = true;
                stats.derived += 1;
                prov.why.entry((p, t)).or_insert(just);
                if !governor.note_row() {
                    return Err(EvalError::BudgetExhausted {
                        resource: Resource::Rows,
                        partial: stats,
                    });
                }
            }
        }
        first_round = false;
        if !changed {
            return Ok((stats, prov));
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn trace_join(
    db: &Database,
    rule: &Rule,
    rule_idx: usize,
    idx: usize,
    delta_idx: Option<usize>,
    marks: &FxHashMap<Pred, usize>,
    subst: &mut FxHashMap<Var, Cst>,
    out: &mut Vec<(Pred, Tuple, Justification)>,
) {
    if idx == rule.body.len() {
        let premises: Vec<(Pred, Tuple)> = rule
            .body
            .iter()
            .map(|a| (a.pred, a.ground(subst)))
            .collect();
        out.push((
            rule.head.pred,
            rule.head.ground(subst),
            Justification {
                rule: rule_idx,
                premises,
            },
        ));
        return;
    }
    let atom: &Atom = &rule.body[idx];
    let Some(rel) = db.relation(atom.pred) else {
        return;
    };
    let rows: Vec<&[Cst]> = if delta_idx == Some(idx) {
        rel.rows_from(marks.get(&atom.pred).copied().unwrap_or(0))
            .collect()
    } else {
        let pattern: Vec<Option<Cst>> = atom
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => Some(*c),
                Term::Var(v) => subst.get(v).copied(),
            })
            .collect();
        rel.select(&pattern).collect()
    };
    for row in rows {
        let mut bound = Vec::new();
        let mut ok = true;
        for (t, v) in atom.args.iter().zip(row.iter()) {
            match t {
                Term::Const(c) => {
                    if c != v {
                        ok = false;
                        break;
                    }
                }
                Term::Var(var) => match subst.get(var) {
                    Some(&existing) => {
                        if existing != *v {
                            ok = false;
                            break;
                        }
                    }
                    None => {
                        subst.insert(*var, *v);
                        bound.push(*var);
                    }
                },
            }
        }
        if ok {
            trace_join(db, rule, rule_idx, idx + 1, delta_idx, marks, subst, out);
        }
        for var in bound {
            subst.remove(&var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_term::Interner;

    fn tc_setup() -> (Interner, Database, Vec<Rule>, Pred, Pred, Vec<Cst>) {
        let mut i = Interner::new();
        let edge = Pred(i.intern("Edge"));
        let path = Pred(i.intern("Path"));
        let (x, y, z) = (Var(i.intern("x")), Var(i.intern("y")), Var(i.intern("z")));
        let rules = vec![
            Rule::new(
                Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
            ),
            Rule::new(
                Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
                vec![
                    Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
                    Atom::new(edge, vec![Term::Var(y), Term::Var(z)]),
                ],
            ),
        ];
        let nodes: Vec<Cst> = (0..4).map(|k| Cst(i.intern(&format!("v{k}")))).collect();
        let mut db = Database::new();
        for w in nodes.windows(2) {
            db.insert(edge, &[w[0], w[1]]);
        }
        (i, db, rules, edge, path, nodes)
    }

    #[test]
    fn traced_fixpoint_matches_untrace() {
        let (i, db0, rules, _, _, _) = tc_setup();
        let mut db1 = db0.clone();
        let mut db2 = db0;
        crate::evaluate(&mut db1, &rules).unwrap();
        evaluate_traced(&mut db2, &rules).unwrap();
        assert_eq!(db1.dump(&i), db2.dump(&i));
    }

    #[test]
    fn explanations_bottom_out_in_edb() {
        let (_, mut db, rules, edge, path, nodes) = tc_setup();
        let (_, prov) = evaluate_traced(&mut db, &rules).unwrap();
        let d = prov
            .explain(&db, path, &[nodes[0], nodes[3]])
            .expect("Path(v0,v3) holds");
        // The transitive step uses rule 1 with a Path premise and an Edge
        // premise.
        assert_eq!(d.rule, Some(1));
        assert_eq!(d.premises.len(), 2);
        // Walk to the leaves: every leaf is an Edge (EDB) fact.
        fn leaves(d: &Derivation, out: &mut Vec<(Pred, Tuple)>) {
            if d.premises.is_empty() {
                out.push(d.fact.clone());
            } else {
                for p in &d.premises {
                    leaves(p, out);
                }
            }
        }
        let mut ls = Vec::new();
        leaves(&d, &mut ls);
        assert!(ls.iter().all(|(p, _)| *p == edge));
        assert_eq!(ls.len(), 3, "three edges justify Path(v0,v3)");
    }

    #[test]
    fn edb_facts_are_given() {
        let (_, mut db, rules, edge, _, nodes) = tc_setup();
        let (_, prov) = evaluate_traced(&mut db, &rules).unwrap();
        let d = prov.explain(&db, edge, &[nodes[0], nodes[1]]).unwrap();
        assert_eq!(d.rule, None);
        assert!(d.premises.is_empty());
    }

    #[test]
    fn absent_facts_have_no_explanation() {
        let (_, mut db, rules, _, path, nodes) = tc_setup();
        let (_, prov) = evaluate_traced(&mut db, &rules).unwrap();
        assert!(prov.explain(&db, path, &[nodes[3], nodes[0]]).is_none());
    }

    #[test]
    fn render_is_indented_and_complete() {
        let (i, mut db, rules, _, path, nodes) = tc_setup();
        let (_, prov) = evaluate_traced(&mut db, &rules).unwrap();
        let d = prov.explain(&db, path, &[nodes[0], nodes[2]]).unwrap();
        let text = Provenance::render(&d, &i);
        assert!(text.contains("Path(v0,v2)   [by rule 1]"));
        assert!(text.contains("  Edge(v1,v2)   [given]"));
    }
}
