//! Positive Horn rules over function-free atoms.

use fundb_term::{Cst, FxHashMap, Interner, Pred, Var};
use std::fmt;

/// A term of function-free Datalog: a variable or a constant.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A variable, to be bound during rule evaluation.
    Var(Var),
    /// A constant.
    Const(Cst),
}

impl Term {
    /// The constant, if this term is one.
    pub fn as_const(self) -> Option<Cst> {
        match self {
            Term::Const(c) => Some(c),
            Term::Var(_) => None,
        }
    }
}

/// An atom `P(t₁, …, tₖ)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Atom {
    /// Predicate symbol.
    pub pred: Pred,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Convenience constructor.
    pub fn new(pred: Pred, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// Variables occurring in the atom, with duplicates.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(|t| match t {
            Term::Var(v) => Some(*v),
            Term::Const(_) => None,
        })
    }

    /// Instantiates the atom under a (total, for this atom) substitution.
    pub fn ground(&self, subst: &FxHashMap<Var, Cst>) -> Box<[Cst]> {
        self.args
            .iter()
            .map(|t| match t {
                Term::Const(c) => *c,
                Term::Var(v) => *subst
                    .get(v)
                    .expect("ground() called with an unbound variable"),
            })
            .collect()
    }

    /// Renders the atom.
    pub fn display<'a>(&'a self, interner: &'a Interner) -> impl fmt::Display + 'a {
        struct D<'a>(&'a Atom, &'a Interner);
        impl fmt::Display for D<'_> {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}(", self.1.resolve(self.0.pred.sym()))?;
                for (i, t) in self.0.args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    match t {
                        Term::Var(v) => write!(f, "{}", self.1.resolve(v.sym()))?,
                        Term::Const(c) => write!(f, "{}", self.1.resolve(c.sym()))?,
                    }
                }
                write!(f, ")")
            }
        }
        D(self, interner)
    }
}

/// A positive Horn rule `body₁, …, bodyₙ → head`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    /// Head atom.
    pub head: Atom,
    /// Body atoms (conjunction). May be empty: the rule is then a fact
    /// schema and must be ground.
    pub body: Vec<Atom>,
}

impl Rule {
    /// Convenience constructor.
    pub fn new(head: Atom, body: Vec<Atom>) -> Self {
        Rule { head, body }
    }

    /// Whether the rule is range-restricted: every head variable occurs in
    /// the body. Range-restriction is the paper's syntactic criterion for
    /// domain independence (§2.3).
    pub fn is_range_restricted(&self) -> bool {
        let body_vars: std::collections::HashSet<Var> =
            self.body.iter().flat_map(Atom::vars).collect();
        self.head.vars().all(|v| body_vars.contains(&v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Interner, Pred, Var, Var, Cst) {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let x = Var(i.intern("x"));
        let y = Var(i.intern("y"));
        let a = Cst(i.intern("a"));
        (i, p, x, y, a)
    }

    #[test]
    fn vars_skips_constants() {
        let (_, p, x, _, a) = setup();
        let atom = Atom::new(p, vec![Term::Var(x), Term::Const(a)]);
        assert_eq!(atom.vars().collect::<Vec<_>>(), vec![x]);
    }

    #[test]
    fn ground_substitutes() {
        let (_, p, x, _, a) = setup();
        let atom = Atom::new(p, vec![Term::Var(x), Term::Const(a)]);
        let mut s = FxHashMap::default();
        s.insert(x, a);
        assert_eq!(&*atom.ground(&s), &[a, a]);
    }

    #[test]
    fn range_restriction_detects_free_head_vars() {
        let (_, p, x, y, _) = setup();
        let safe = Rule::new(
            Atom::new(p, vec![Term::Var(x)]),
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        assert!(safe.is_range_restricted());
        let unsafe_rule = Rule::new(
            Atom::new(p, vec![Term::Var(y)]),
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        assert!(!unsafe_rule.is_range_restricted());
    }

    #[test]
    fn display_renders_atoms() {
        let (i, p, x, _, a) = setup();
        let atom = Atom::new(p, vec![Term::Var(x), Term::Const(a)]);
        assert_eq!(atom.display(&i).to_string(), "P(x,a)");
    }
}
