//! Compilation of rules into register-based join programs.
//!
//! The semi-naive loop of PR 1/2 interpreted every rule body per probe: a
//! fresh `Vec<Option<Cst>>` pattern per atom visit, variable bindings in an
//! `FxHashMap<Var, Cst>`, and candidate rows confirmed field-by-field
//! against the pattern. All of that is rule structure, not data — so a
//! [`JoinProgram`] now pays it once, at [`DeltaPlan`](crate::DeltaPlan)
//! construction:
//!
//! * variables become **registers**: dense indexes into a `Vec<Cst>` file,
//!   numbered by first occurrence in the chosen atom order, so a binding is
//!   an array store and an equality check is an array load — no hashing, no
//!   unwinding (a register is always overwritten before it is re-read);
//! * each body atom becomes an [`AtomOp`] that precomputes, per column,
//!   whether the position is a constant ([`ColOp::CheckConst`]), a register
//!   bound by an earlier atom or an earlier column of the same atom
//!   ([`ColOp::CheckReg`]), or a fresh binding ([`ColOp::Load`]);
//! * the columns bound *before* the atom runs form its **signature**: a
//!   bitmask keying the on-demand composite indexes of
//!   [`Relation`](crate::Relation), so a multi-column probe is one hash
//!   lookup over the resolved key instead of a candidate scan;
//! * body atoms are **reordered at compile time**: the delta atom (if any)
//!   runs outermost — its rows are the reason the rule fires at all — and
//!   the remaining atoms are ordered either greedily by boundness (most
//!   bound positions first, ties by original body position) or, when the
//!   caller supplies a [`PlanStats`] snapshot
//!   ([`JoinProgram::compile_with_stats`]), by a cardinality cost model:
//!   repeatedly the atom with the smallest estimated candidate count
//!   `rows / Π distinct(bound col)`, clamped from above by the worst
//!   single-column bucket (skew) and from below by 1. Predicates the
//!   snapshot knows nothing about are costed pessimistically, and a rule
//!   whose body is entirely cold falls back to the greedy order. Either
//!   way the order is fixed at compile time, which keeps every run (and
//!   every thread count) byte-identical.
//!
//! Execution walks the ops depth-first exactly like the old interpreter, so
//! compiled evaluation derives the same rows; only the visit order of
//! *bindings* changes (and with it which candidate rows are ever touched).

use crate::engine::EvalStats;
use crate::governor::{ProbeGuard, Resource, PROBE_CHECK_MASK};
use crate::rel::{CompositeProbe, Database, PlanStats, Relation, RowId};
use crate::rule::{Atom, Rule, Term};
use fundb_term::{Cst, FxHashMap, FxHashSet, Pred, Sym, Var};
use std::hash::Hasher;

/// A value position resolvable at run time: a compile-time constant or a
/// register of the program's register file.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum Slot {
    /// A constant from the rule text.
    Const(Cst),
    /// A register holding a variable bound by an earlier op.
    Reg(u32),
}

impl Slot {
    /// The slot's value under the current register file.
    #[inline]
    fn resolve(self, regs: &[Cst]) -> Cst {
        match self {
            Slot::Const(c) => c,
            Slot::Reg(r) => regs[r as usize],
        }
    }
}

/// Per-column action of an [`AtomOp`], applied to each candidate row.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum ColOp {
    /// The column must equal a constant.
    CheckConst(u32, Cst),
    /// The column must equal an already-written register.
    CheckReg(u32, u32),
    /// The column's value is stored into a fresh register.
    Load(u32, u32),
}

/// One body atom, compiled: where to probe, with what key, and how to
/// confirm-and-bind each candidate row.
#[derive(Clone, Debug)]
pub(crate) struct AtomOp {
    /// Relation to probe.
    pred: Pred,
    /// Bitmask of columns bound before this atom runs (constants and
    /// registers written by earlier atoms). `0` means a full scan.
    sig: u64,
    /// Values of the `sig` columns, in ascending column order.
    key: Vec<Slot>,
    /// Column ops in ascending column order (so a within-atom repeated
    /// variable is loaded before it is checked).
    cols: Vec<ColOp>,
    /// The atom's position in the rule text, for matching delta ranges.
    body_pos: u32,
}

/// A head (or query output) position.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub(crate) enum HeadSlot {
    /// A constant from the rule text.
    Const(Cst),
    /// A register written by the body.
    Reg(u32),
    /// A variable the body never binds (unsafe rule / unbound output). The
    /// emit callback decides how to fail, preserving the interpreter's
    /// lazy panic-on-first-firing behaviour.
    Unbound,
}

/// A rule body compiled to a flat op list over a dense register file.
#[derive(Clone, Debug)]
pub struct JoinProgram {
    head_pred: Pred,
    head: Vec<HeadSlot>,
    ops: Vec<AtomOp>,
    nregs: usize,
}

impl JoinProgram {
    /// Compiles `rule` with the greedy boundness ordering; `delta_atom`
    /// (a body position) forces that atom to run outermost, which is what
    /// makes chunked delta ranges partition the work exactly.
    pub fn compile(rule: &Rule, delta_atom: Option<usize>) -> JoinProgram {
        let order = greedy_order(rule, delta_atom);
        JoinProgram::compile_ordered(rule, &order)
    }

    /// Compiles `rule` with the cardinality-estimate cost ordering (see
    /// [`cost_order`]); the delta atom, if any, is still forced outermost.
    /// Composite-index demands follow from the chosen order: each atom's
    /// signature is the set of columns bound before it runs, so a different
    /// order demands different indexes — [`JoinProgram::demands`] reports
    /// whatever this plan actually probes.
    pub fn compile_with_stats(
        rule: &Rule,
        delta_atom: Option<usize>,
        stats: &PlanStats,
    ) -> JoinProgram {
        let order = cost_order(rule, delta_atom, stats);
        JoinProgram::compile_ordered(rule, &order)
    }

    /// Compiles `rule` with an explicit atom order (`order` is a
    /// permutation of body positions). Used directly by [`crate::query`],
    /// which must preserve the written order of the body.
    pub(crate) fn compile_ordered(rule: &Rule, order: &[usize]) -> JoinProgram {
        debug_assert_eq!(order.len(), rule.body.len());
        let mut regs: FxHashMap<Var, u32> = FxHashMap::default();
        let mut prebound: FxHashSet<Var> = FxHashSet::default();
        let mut nregs = 0u32;
        let mut ops = Vec::with_capacity(order.len());
        for &bi in order {
            let atom = &rule.body[bi];
            assert!(atom.args.len() <= 64, "atom arity exceeds signature width");
            let mut cols = Vec::with_capacity(atom.args.len());
            let mut sig = 0u64;
            let mut key = Vec::new();
            for (col, t) in atom.args.iter().enumerate() {
                let col = col as u32;
                match t {
                    Term::Const(c) => {
                        cols.push(ColOp::CheckConst(col, *c));
                        sig |= 1 << col;
                        key.push(Slot::Const(*c));
                    }
                    Term::Var(v) => {
                        if let Some(&r) = regs.get(v) {
                            cols.push(ColOp::CheckReg(col, r));
                            // Only variables bound by *earlier atoms* are
                            // available when the probe key is built; a
                            // within-atom repeat is confirmed per row.
                            if prebound.contains(v) {
                                sig |= 1 << col;
                                key.push(Slot::Reg(r));
                            }
                        } else {
                            regs.insert(*v, nregs);
                            cols.push(ColOp::Load(col, nregs));
                            nregs += 1;
                        }
                    }
                }
            }
            ops.push(AtomOp {
                pred: atom.pred,
                sig,
                key,
                cols,
                body_pos: bi as u32,
            });
            prebound.extend(atom.vars());
        }
        let head = rule
            .head
            .args
            .iter()
            .map(|t| match t {
                Term::Const(c) => HeadSlot::Const(*c),
                Term::Var(v) => regs.get(v).map_or(HeadSlot::Unbound, |&r| HeadSlot::Reg(r)),
            })
            .collect();
        JoinProgram {
            head_pred: rule.head.pred,
            head,
            ops,
            nregs: nregs as usize,
        }
    }

    /// Size of the register file an execution needs.
    pub fn register_count(&self) -> usize {
        self.nregs
    }

    /// The head predicate rows are emitted under.
    pub(crate) fn head_pred(&self) -> Pred {
        self.head_pred
    }

    /// Body atom positions in execution order (for tests and diagnostics).
    pub fn atom_order(&self) -> Vec<usize> {
        self.ops.iter().map(|op| op.body_pos as usize).collect()
    }

    /// Number of compiled atom ops (the body length).
    pub(crate) fn op_len(&self) -> usize {
        self.ops.len()
    }

    /// Length of the longest common compiled prefix between this program
    /// and `other`: leading [`AtomOp`]s that probe the same predicate with
    /// the same signature, key slots, and column ops. `body_pos` is
    /// metadata (it only matches delta ranges) and deliberately ignored —
    /// two rules whose bodies *start* the same way compile to the same
    /// leading ops even if the shared atoms sit at different text
    /// positions. Registers are numbered by first occurrence in op order,
    /// so structurally equal prefixes assign identical registers: one
    /// evaluation of the shared prefix can fan out into every program
    /// without re-binding anything.
    pub(crate) fn shared_prefix_len(&self, other: &JoinProgram) -> usize {
        self.ops
            .iter()
            .zip(&other.ops)
            .take_while(|(a, b)| {
                a.pred == b.pred && a.sig == b.sig && a.key == b.key && a.cols == b.cols
            })
            .count()
    }

    /// Estimated `join_probes` one delta row of this (per-delta) program
    /// costs: 1 for the delta row itself, plus the cascade of per-visit
    /// candidate estimates over the remaining ops (each op's estimate
    /// multiplies the visit count of everything below it). Uses the same
    /// per-atom model as [`cost_order`], driven by the compiled signatures.
    /// The adaptive evaluator compares this against observed probe counts
    /// to detect drift.
    pub(crate) fn estimate_probes_per_delta_row(&self, stats: &PlanStats) -> f64 {
        let default_rows = stats.total_rows().max(64) as f64;
        let mut running = 1.0f64;
        let mut total = 1.0f64;
        for op in self.ops.iter().skip(1) {
            let e = op_cost(op, stats, default_rows);
            total += running * e;
            running = (running * e).min(1e18);
        }
        total
    }

    /// Composite-index signatures this program will probe, appended to
    /// `out` as `(predicate, signature)` pairs (multi-column only —
    /// single columns are served by the per-column indexes).
    pub(crate) fn demands(&self, out: &mut Vec<(Pred, u64)>) {
        for op in &self.ops {
            if op.sig.count_ones() >= 2 {
                out.push((op.pred, op.sig));
            }
        }
    }

    /// Runs the program over `db`. `delta`, if present, restricts the
    /// *first* op (the delta atom of a per-delta program) to the dense row
    /// range `start..end` of its relation. `regs` must hold at least
    /// [`register_count`](Self::register_count) slots; `emit` receives the
    /// head template and the register file for each firing. Every
    /// [`crate::governor::PROBE_CHECK_INTERVAL`] probes the `guard` is
    /// polled; `Err` aborts the execution mid-join (the caller discards any
    /// partial output).
    pub(crate) fn execute<F: FnMut(&[HeadSlot], &[Cst])>(
        &self,
        db: &Database,
        delta: Option<(usize, usize)>,
        regs: &mut [Cst],
        guard: &ProbeGuard<'_>,
        stats: &mut EvalStats,
        emit: &mut F,
    ) -> Result<(), Resource> {
        debug_assert!(regs.len() >= self.nregs);
        self.exec(db, 0, delta, regs, guard, stats, emit)
    }

    /// Runs the program with the *first* op (the delta atom of a per-delta
    /// program) restricted to an explicit list of row ids instead of a
    /// dense range. This is the negative-delta entry point: retraction
    /// maintenance feeds the rows about to be deleted — which are not
    /// contiguous in the arena — through the same delta-outermost program
    /// the forward evaluator compiled. The listed rows must still be live
    /// in `db` (the over-delete pass tombstones only after discovery).
    pub(crate) fn execute_rows<F: FnMut(&[HeadSlot], &[Cst])>(
        &self,
        db: &Database,
        rows: &[u32],
        regs: &mut [Cst],
        guard: &ProbeGuard<'_>,
        stats: &mut EvalStats,
        emit: &mut F,
    ) -> Result<(), Resource> {
        debug_assert!(regs.len() >= self.nregs);
        debug_assert!(!self.ops.is_empty());
        let op = &self.ops[0];
        let Some(rel) = db.relation(op.pred) else {
            return Ok(());
        };
        for &id in rows {
            let row = rel.row(RowId(id));
            stats.join_probes += 1;
            if stats.join_probes & PROBE_CHECK_MASK == 0 {
                guard.check()?;
            }
            if apply_cols(&op.cols, row, regs) {
                self.exec(db, 1, None, regs, guard, stats, emit)?;
            }
        }
        Ok(())
    }

    /// Runs only the first `limit` ops (a shared prefix), calling `cont`
    /// with the register file for every binding that survives them. The
    /// continuation typically resumes *other* programs sharing this prefix
    /// via [`JoinProgram::execute_from`]; it may write deeper registers but
    /// must leave the prefix's own registers alone (which `execute_from`
    /// guarantees: later ops only `Load` fresh registers).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn execute_prefix<F: FnMut(&mut [Cst]) -> Result<(), Resource>>(
        &self,
        db: &Database,
        limit: usize,
        delta: Option<(usize, usize)>,
        regs: &mut [Cst],
        guard: &ProbeGuard<'_>,
        stats: &mut EvalStats,
        cont: &mut F,
    ) -> Result<(), Resource> {
        debug_assert!(limit <= self.ops.len());
        self.exec_prefix(db, 0, limit, delta, regs, guard, stats, cont)
    }

    /// Resumes this program at op `depth`, with the registers of all
    /// earlier ops already bound in `regs` (by a shared-prefix execution of
    /// a structurally identical prefix). No delta restriction applies — the
    /// prefix already consumed it.
    pub(crate) fn execute_from<F: FnMut(&[HeadSlot], &[Cst])>(
        &self,
        db: &Database,
        depth: usize,
        regs: &mut [Cst],
        guard: &ProbeGuard<'_>,
        stats: &mut EvalStats,
        emit: &mut F,
    ) -> Result<(), Resource> {
        debug_assert!(regs.len() >= self.nregs);
        self.exec(db, depth, None, regs, guard, stats, emit)
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_prefix<F: FnMut(&mut [Cst]) -> Result<(), Resource>>(
        &self,
        db: &Database,
        depth: usize,
        limit: usize,
        delta: Option<(usize, usize)>,
        regs: &mut [Cst],
        guard: &ProbeGuard<'_>,
        stats: &mut EvalStats,
        cont: &mut F,
    ) -> Result<(), Resource> {
        if depth == limit {
            return cont(regs);
        }
        let op = &self.ops[depth];
        let Some(rel) = db.relation(op.pred) else {
            return Ok(());
        };
        if depth == 0 {
            if let Some((start, end)) = delta {
                for row in rel.rows_range(start, end) {
                    stats.join_probes += 1;
                    if stats.join_probes & PROBE_CHECK_MASK == 0 {
                        guard.check()?;
                    }
                    if apply_cols(&op.cols, row, regs) {
                        self.exec_prefix(db, depth + 1, limit, delta, regs, guard, stats, cont)?;
                    }
                }
                return Ok(());
            }
        }
        if op.sig == 0 {
            for row in rel.rows() {
                stats.join_probes += 1;
                if stats.join_probes & PROBE_CHECK_MASK == 0 {
                    guard.check()?;
                }
                if apply_cols(&op.cols, row, regs) {
                    self.exec_prefix(db, depth + 1, limit, delta, regs, guard, stats, cont)?;
                }
            }
            return Ok(());
        }
        let candidates = self.op_candidates(rel, op, regs, stats);
        for &id in candidates {
            let row = rel.row(RowId(id));
            stats.join_probes += 1;
            if stats.join_probes & PROBE_CHECK_MASK == 0 {
                guard.check()?;
            }
            if apply_cols(&op.cols, row, regs) {
                self.exec_prefix(db, depth + 1, limit, delta, regs, guard, stats, cont)?;
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec<F: FnMut(&[HeadSlot], &[Cst])>(
        &self,
        db: &Database,
        depth: usize,
        delta: Option<(usize, usize)>,
        regs: &mut [Cst],
        guard: &ProbeGuard<'_>,
        stats: &mut EvalStats,
        emit: &mut F,
    ) -> Result<(), Resource> {
        let Some(op) = self.ops.get(depth) else {
            emit(&self.head, regs);
            return Ok(());
        };
        let Some(rel) = db.relation(op.pred) else {
            return Ok(());
        };
        // The delta atom of a per-delta program is always op 0: scan its
        // chunk of fresh rows directly.
        if depth == 0 {
            if let Some((start, end)) = delta {
                for row in rel.rows_range(start, end) {
                    stats.join_probes += 1;
                    if stats.join_probes & PROBE_CHECK_MASK == 0 {
                        guard.check()?;
                    }
                    if apply_cols(&op.cols, row, regs) {
                        self.exec(db, depth + 1, delta, regs, guard, stats, emit)?;
                    }
                }
                return Ok(());
            }
        }
        if op.sig == 0 {
            // No bound columns: scan.
            for row in rel.rows() {
                stats.join_probes += 1;
                if stats.join_probes & PROBE_CHECK_MASK == 0 {
                    guard.check()?;
                }
                if apply_cols(&op.cols, row, regs) {
                    self.exec(db, depth + 1, delta, regs, guard, stats, emit)?;
                }
            }
            return Ok(());
        }
        let candidates = self.op_candidates(rel, op, regs, stats);
        for &id in candidates {
            let row = rel.row(RowId(id));
            stats.join_probes += 1;
            if stats.join_probes & PROBE_CHECK_MASK == 0 {
                guard.check()?;
            }
            if apply_cols(&op.cols, row, regs) {
                self.exec(db, depth + 1, delta, regs, guard, stats, emit)?;
            }
        }
        Ok(())
    }

    /// Candidate rows for a bound-column op (`op.sig != 0`), counting index
    /// hits/misses and bloom skips. A bloom rejection is still an index hit
    /// (the index fully covered the key) that happens to return zero
    /// candidates — `join_probes` and answers are byte-identical with and
    /// without the filter; only the bucket walk is skipped.
    fn op_candidates<'a>(
        &self,
        rel: &'a Relation,
        op: &AtomOp,
        regs: &[Cst],
        stats: &mut EvalStats,
    ) -> &'a [u32] {
        if op.sig.count_ones() == 1 {
            // One bound column: the per-column index covers the key.
            let col = op.sig.trailing_zeros() as usize;
            stats.index_hits += 1;
            rel.column_bucket(col, op.key[0].resolve(regs))
        } else {
            match rel.composite_probe(op.sig, self.key_hash(op, regs)) {
                CompositeProbe::Bucket(bucket) => {
                    // Full cover: candidates differ from answers only by
                    // hash collisions.
                    stats.index_hits += 1;
                    bucket
                }
                CompositeProbe::BloomReject => {
                    // Guaranteed miss, proven without touching the bucket
                    // map.
                    stats.index_hits += 1;
                    stats.bloom_skips += 1;
                    &[]
                }
                CompositeProbe::NotBuilt => {
                    // Index not built (immutable caller): fall back to the
                    // smallest single-column bucket among the bound columns.
                    stats.index_misses += 1;
                    self.best_partial_bucket(rel, op, regs)
                }
            }
        }
    }

    /// Hash of `op`'s probe key under the current registers; must agree
    /// with the composite index's row-side hashing.
    #[inline]
    fn key_hash(&self, op: &AtomOp, regs: &[Cst]) -> u64 {
        let mut h = fundb_term::FxHasher::default();
        for slot in &op.key {
            h.write_usize(slot.resolve(regs).index());
        }
        h.finish()
    }

    /// Smallest per-column bucket among `op`'s bound columns.
    fn best_partial_bucket<'a>(&self, rel: &'a Relation, op: &AtomOp, regs: &[Cst]) -> &'a [u32] {
        let mut best: &[u32] = &[];
        let mut best_len = usize::MAX;
        let mut bits = op.sig;
        let mut ki = 0;
        while bits != 0 {
            let col = bits.trailing_zeros() as usize;
            let bucket = rel.column_bucket(col, op.key[ki].resolve(regs));
            if bucket.len() < best_len {
                best = bucket;
                best_len = bucket.len();
            }
            bits &= bits - 1;
            ki += 1;
        }
        best
    }
}

/// Confirms a candidate row against an op's column ops, writing fresh
/// bindings into `regs`. Ops are in column order, so a `Load` always
/// precedes the `CheckReg` of a within-atom repeat. Registers need no
/// unwinding on failure: a register is only read at deeper ops (or the
/// head) after this op re-runs its `Load`s for the next candidate.
#[inline]
fn apply_cols(cols: &[ColOp], row: &[Cst], regs: &mut [Cst]) -> bool {
    for op in cols {
        match *op {
            ColOp::CheckConst(col, c) => {
                if row[col as usize] != c {
                    return false;
                }
            }
            ColOp::CheckReg(col, r) => {
                if row[col as usize] != regs[r as usize] {
                    return false;
                }
            }
            ColOp::Load(col, r) => regs[r as usize] = row[col as usize],
        }
    }
    true
}

/// The greedy atom ordering: the delta atom (if any) first, then repeatedly
/// the atom with the most bound positions (constants or variables bound by
/// already-placed atoms), ties broken by original body position. Purely
/// static, so the order — and with it row derivation order — is identical
/// across runs and thread counts.
fn greedy_order(rule: &Rule, delta_atom: Option<usize>) -> Vec<usize> {
    let n = rule.body.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: FxHashSet<Var> = FxHashSet::default();
    if let Some(ai) = delta_atom {
        order.push(ai);
        used[ai] = true;
        bound.extend(rule.body[ai].vars());
    }
    while order.len() < n {
        let mut best = usize::MAX;
        let mut best_score = 0usize;
        for (i, atom) in rule.body.iter().enumerate() {
            if used[i] {
                continue;
            }
            let score = atom
                .args
                .iter()
                .filter(|t| match t {
                    Term::Const(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .count();
            if best == usize::MAX || score > best_score {
                best = i;
                best_score = score;
            }
        }
        order.push(best);
        used[best] = true;
        bound.extend(rule.body[best].vars());
    }
    order
}

/// The cardinality-estimate atom ordering. Like [`greedy_order`] it pins
/// the delta atom outermost (chunked delta ranges must partition the work
/// exactly), but the remaining atoms are chosen by estimated candidate
/// count instead of bound-position count:
///
/// * a known atom costs `rows / Π distinct(bound col)` — the uniform
///   selectivity estimate — clamped from above by the smallest
///   `max_bucket(bound col)` (a single-column probe can never return more
///   rows than its worst bucket, however skewed) and from below by 1;
/// * an atom whose predicate the snapshot does not know (usually an IDB
///   predicate, empty now but growing during the run) is costed by when
///   the program will execute: the full program runs in the first round,
///   where such a predicate is still genuinely empty, so it costs a
///   near-empty scan and stays hoisted first (the greedy order's free
///   empty scan, kept deliberately — hoisting a known relation above it
///   trades a free scan for a real one, the E14 cyclic regression); delta
///   programs run in later rounds, so there it is costed pessimistically
///   at the snapshot's total row count, discounted by half per bound
///   column. Magic and adorned predicates minted by [`crate::magic`] land
///   here by construction: their overlay relations are empty (or
///   seed-only) at plan time and [`Database::plan_stats`] omits empty
///   relations, so demand guards are hoisted first — the sideways
///   information-passing order the rewrite intends;
/// * ties keep the earliest body position, so the order — and with it row
///   derivation order — is deterministic.
///
/// When the snapshot is cold, or no body predicate has statistics, the
/// estimates would be pure guesswork: fall back to [`greedy_order`]
/// entirely so warm and cold compiles of stat-less rules agree exactly.
///
/// **Hysteresis**: even with statistics, the cost order only *replaces* the
/// greedy order when its estimated total probe count (the multiplicative
/// cascade of per-step candidate estimates — each atom's estimate scales
/// the visit count of everything ordered after it) beats greedy's by more
/// than [`HYSTERESIS_MARGIN`]. On cold-ish or equal estimates the
/// pessimistic defaults used for unknown predicates would otherwise flip
/// plans on guesswork — measurably worse on cyclic workloads, where
/// hoisting a known EDB relation above a not-yet-populated IDB predicate
/// trades a free empty scan for a real one every first round.
fn cost_order(rule: &Rule, delta_atom: Option<usize>, stats: &PlanStats) -> Vec<usize> {
    let greedy = greedy_order(rule, delta_atom);
    let any_known = rule.body.iter().any(|a| stats.get(a.pred).is_some());
    if !any_known {
        return greedy;
    }
    let n = rule.body.len();
    let mut order = Vec::with_capacity(n);
    let mut used = vec![false; n];
    let mut bound: FxHashSet<Var> = FxHashSet::default();
    if let Some(ai) = delta_atom {
        order.push(ai);
        used[ai] = true;
        bound.extend(rule.body[ai].vars());
    }
    // Unknown predicates: the full (first-round) program runs against the
    // snapshot's own database, where a predicate the snapshot omits is
    // genuinely empty — cost it as a near-empty scan, which keeps it
    // hoisted first exactly like the greedy order's free empty scan. Delta
    // programs run in later rounds, when an omitted predicate is an IDB
    // relation that has been growing the whole time: assume it at least as
    // large as everything we can see (floored so a near-empty snapshot
    // still treats it as non-trivial).
    let default_rows = if delta_atom.is_none() {
        1.0
    } else {
        stats.total_rows().max(64) as f64
    };
    while order.len() < n {
        let mut best = usize::MAX;
        let mut best_cost = f64::INFINITY;
        for (i, atom) in rule.body.iter().enumerate() {
            if used[i] {
                continue;
            }
            let cost = atom_cost(atom, &bound, stats, default_rows);
            if cost < best_cost {
                best = i;
                best_cost = cost;
            }
        }
        order.push(best);
        used[best] = true;
        bound.extend(rule.body[best].vars());
    }
    if order == greedy {
        return greedy;
    }
    let planned_est = order_probe_estimate(rule, &order, stats, default_rows);
    let greedy_est = order_probe_estimate(rule, &greedy, stats, default_rows);
    if planned_est * HYSTERESIS_MARGIN < greedy_est {
        order
    } else {
        greedy
    }
}

/// How much better (estimated total probes) the cost order must be before
/// it replaces the greedy order. See [`cost_order`].
const HYSTERESIS_MARGIN: f64 = 1.1;

/// Estimated total probes of executing `rule`'s body in `order`: the
/// per-step candidate estimates ([`atom_cost`]) cascaded multiplicatively —
/// an atom visited `running` times with `e` estimated candidates costs
/// `running * e` probes and multiplies the visit count of everything after
/// it by `e`. This is the hysteresis metric of [`cost_order`].
fn order_probe_estimate(rule: &Rule, order: &[usize], stats: &PlanStats, default_rows: f64) -> f64 {
    let mut bound: FxHashSet<Var> = FxHashSet::default();
    let mut running = 1.0f64;
    let mut total = 0.0f64;
    for &bi in order {
        let atom = &rule.body[bi];
        let e = atom_cost(atom, &bound, stats, default_rows);
        total += running * e;
        running = (running * e).min(1e18);
        bound.extend(atom.vars());
    }
    total
}

/// Estimated candidate rows one visit of `atom` enumerates, given the
/// variables bound by already-placed atoms. See [`cost_order`].
fn atom_cost(atom: &Atom, bound: &FxHashSet<Var>, stats: &PlanStats, default_rows: f64) -> f64 {
    let rs = stats.get(atom.pred);
    let rows = rs.map_or(default_rows, |r| r.rows as f64);
    let mut est = rows;
    let mut cap = rows;
    // Recency floor: live snapshots also carry *delta* cardinalities (rows
    // since the last round-boundary mark, per-column distinct sketches).
    // When recent rows concentrate on fewer values than the relation as a
    // whole, probes carrying recent keys hit bigger buckets than
    // rows/distinct suggests, so the estimate is floored by the delta-based
    // one. Plain snapshots have `delta_rows == 0`, which disables this.
    let delta_rows = rs.map_or(0, |r| r.delta_rows);
    let mut delta_est = delta_rows as f64;
    for (col, t) in atom.args.iter().enumerate() {
        let is_bound = match t {
            Term::Const(_) => true,
            Term::Var(v) => bound.contains(v),
        };
        if !is_bound {
            continue;
        }
        match rs {
            Some(r) => {
                est /= r.distinct.get(col).copied().unwrap_or(1).max(1) as f64;
                cap = cap.min(r.max_bucket.get(col).copied().unwrap_or(0).max(1) as f64);
                if delta_rows > 0 {
                    delta_est /= r.delta_distinct.get(col).copied().unwrap_or(1).max(1) as f64;
                }
            }
            // No per-column statistics: assume a bound column halves the
            // candidates, so more-bound unknown atoms still order earlier.
            None => est /= 2.0,
        }
    }
    est.max(delta_est).max(1.0).min(cap.max(1.0))
}

/// [`atom_cost`] driven by a compiled op's signature instead of a bound
/// variable set: the signature records exactly which columns are bound when
/// the op runs, so this is the same model applied post-compilation (used by
/// [`JoinProgram::estimate_probes_per_delta_row`]).
fn op_cost(op: &AtomOp, stats: &PlanStats, default_rows: f64) -> f64 {
    let rs = stats.get(op.pred);
    let rows = rs.map_or(default_rows, |r| r.rows as f64);
    let mut est = rows;
    let mut cap = rows;
    // Same recency floor as `atom_cost` (inert on plain snapshots).
    let delta_rows = rs.map_or(0, |r| r.delta_rows);
    let mut delta_est = delta_rows as f64;
    let mut bits = op.sig;
    while bits != 0 {
        let col = bits.trailing_zeros() as usize;
        match rs {
            Some(r) => {
                est /= r.distinct.get(col).copied().unwrap_or(1).max(1) as f64;
                cap = cap.min(r.max_bucket.get(col).copied().unwrap_or(0).max(1) as f64);
                if delta_rows > 0 {
                    delta_est /= r.delta_distinct.get(col).copied().unwrap_or(1).max(1) as f64;
                }
            }
            None => est /= 2.0,
        }
        bits &= bits - 1;
    }
    est.max(delta_est).max(1.0).min(cap.max(1.0))
}

/// A rule compiled for every role it can play in a semi-naive round: once
/// with no delta restriction (first/naive rounds) and once per body atom
/// as the delta atom.
#[derive(Clone, Debug)]
pub(crate) struct CompiledRule {
    pub(crate) full: JoinProgram,
    pub(crate) per_delta: Vec<JoinProgram>,
}

impl CompiledRule {
    pub(crate) fn new(rule: &Rule) -> CompiledRule {
        CompiledRule {
            full: JoinProgram::compile(rule, None),
            per_delta: (0..rule.body.len())
                .map(|ai| JoinProgram::compile(rule, Some(ai)))
                .collect(),
        }
    }

    /// Like [`CompiledRule::new`] but with the cost-model ordering over a
    /// statistics snapshot.
    pub(crate) fn with_stats(rule: &Rule, stats: &PlanStats) -> CompiledRule {
        CompiledRule {
            full: JoinProgram::compile_with_stats(rule, None, stats),
            per_delta: (0..rule.body.len())
                .map(|ai| JoinProgram::compile_with_stats(rule, Some(ai), stats))
                .collect(),
        }
    }

    /// All composite-index signatures any of this rule's programs probe.
    pub(crate) fn demands(&self, out: &mut Vec<(Pred, u64)>) {
        self.full.demands(out);
        for p in &self.per_delta {
            p.demands(out);
        }
    }
}

/// A register file pre-sized for `prog`, filled with the placeholder
/// sentinel (every register is written before it is read).
pub(crate) fn register_file(prog: &JoinProgram) -> Vec<Cst> {
    vec![Cst(Sym::PLACEHOLDER); prog.register_count()]
}

/// A placeholder-filled register file of `n` slots — shared-prefix task
/// groups size one file to their largest member program.
pub(crate) fn register_file_sized(n: usize) -> Vec<Cst> {
    vec![Cst(Sym::PLACEHOLDER); n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rule::Atom;
    use fundb_term::Interner;

    fn tc_right(i: &mut Interner) -> Rule {
        let edge = Pred(i.intern("Edge"));
        let path = Pred(i.intern("Path"));
        let (x, y, z) = (Var(i.intern("x")), Var(i.intern("y")), Var(i.intern("z")));
        Rule::new(
            Atom::new(path, vec![Term::Var(x), Term::Var(z)]),
            vec![
                Atom::new(edge, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(path, vec![Term::Var(y), Term::Var(z)]),
            ],
        )
    }

    #[test]
    fn delta_atom_runs_first() {
        let mut i = Interner::new();
        let rule = tc_right(&mut i);
        // Delta on the trailing Path atom: it must be hoisted outermost,
        // and the Edge atom then probes with its second column bound.
        let prog = JoinProgram::compile(&rule, Some(1));
        assert_eq!(prog.atom_order(), vec![1, 0]);
        assert_eq!(prog.ops[1].sig, 0b10);
        // Without a delta the written order is kept (no atom starts bound).
        let full = JoinProgram::compile(&rule, None);
        assert_eq!(full.atom_order(), vec![0, 1]);
    }

    #[test]
    fn constants_and_bound_vars_form_the_signature() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let r = Pred(i.intern("R"));
        let (x, y) = (Var(i.intern("x")), Var(i.intern("y")));
        let a = Cst(i.intern("a"));
        // R(x,y) :- P(x), Q(a, x, y).
        let rule = Rule::new(
            Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
            vec![
                Atom::new(p, vec![Term::Var(x)]),
                Atom::new(q, vec![Term::Const(a), Term::Var(x), Term::Var(y)]),
            ],
        );
        let prog = JoinProgram::compile(&rule, None);
        // Q starts with one bound position (the constant), P with none, so
        // the greedy order hoists Q; P then probes with x bound.
        assert_eq!(prog.atom_order(), vec![1, 0]);
        assert_eq!(prog.ops[0].sig, 0b001);
        assert_eq!(prog.ops[0].key, vec![Slot::Const(a)]);
        assert_eq!(prog.ops[1].sig, 0b1);
        assert_eq!(prog.ops[1].key, vec![Slot::Reg(0)]);
        assert_eq!(prog.register_count(), 2);
        assert_eq!(prog.head, vec![HeadSlot::Reg(0), HeadSlot::Reg(1)]);
    }

    #[test]
    fn within_atom_repeats_check_but_do_not_probe() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let x = Var(i.intern("x"));
        // Q(x) :- P(x, x): the second x confirms per row; no column is
        // bound before the atom runs, so the probe is a scan.
        let rule = Rule::new(
            Atom::new(q, vec![Term::Var(x)]),
            vec![Atom::new(p, vec![Term::Var(x), Term::Var(x)])],
        );
        let prog = JoinProgram::compile(&rule, None);
        assert_eq!(prog.ops[0].sig, 0);
        assert_eq!(
            prog.ops[0].cols,
            vec![ColOp::Load(0, 0), ColOp::CheckReg(1, 0)]
        );
    }

    #[test]
    fn greedy_order_prefers_constants() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let r = Pred(i.intern("R"));
        let (x, y) = (Var(i.intern("x")), Var(i.intern("y")));
        let a = Cst(i.intern("a"));
        // R(y) :- P(x, y), Q(a, x): Q has one constant position bound at
        // the start, P has none — Q runs first.
        let rule = Rule::new(
            Atom::new(r, vec![Term::Var(y)]),
            vec![
                Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(q, vec![Term::Const(a), Term::Var(x)]),
            ],
        );
        assert_eq!(JoinProgram::compile(&rule, None).atom_order(), vec![1, 0]);
    }

    /// A database with `n` distinct rows `(A_i, B_{i % spread})` under
    /// `pred`, for building statistics snapshots in planner tests.
    fn seeded_rel(db: &mut Database, i: &mut Interner, pred: Pred, n: usize, spread: usize) {
        let name = i.resolve(pred.sym()).to_owned();
        for k in 0..n {
            let a = Cst(i.intern(&format!("{name}a{k}")));
            let b = Cst(i.intern(&format!("{name}b{}", k % spread.max(1))));
            db.insert(pred, &[a, b]);
        }
    }

    #[test]
    fn cold_stats_fall_back_to_greedy() {
        let mut i = Interner::new();
        let rule = tc_right(&mut i);
        let cold = PlanStats::empty();
        for delta in [None, Some(0), Some(1)] {
            let greedy = JoinProgram::compile(&rule, delta);
            let planned = JoinProgram::compile_with_stats(&rule, delta, &cold);
            assert_eq!(planned.atom_order(), greedy.atom_order());
        }
    }

    #[test]
    fn stats_hoist_the_small_relation() {
        let mut i = Interner::new();
        let big = Pred(i.intern("Big"));
        let small = Pred(i.intern("Small"));
        let out = Pred(i.intern("Out"));
        let (x, y, z) = (Var(i.intern("x")), Var(i.intern("y")), Var(i.intern("z")));
        // Out(x,z) :- Big(x,y), Small(y,z) — written adversarially: the
        // big relation first. No atom starts bound, so greedy keeps the
        // written order; the cost model flips it.
        let rule = Rule::new(
            Atom::new(out, vec![Term::Var(x), Term::Var(z)]),
            vec![
                Atom::new(big, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(small, vec![Term::Var(y), Term::Var(z)]),
            ],
        );
        assert_eq!(JoinProgram::compile(&rule, None).atom_order(), vec![0, 1]);
        let mut db = Database::new();
        seeded_rel(&mut db, &mut i, big, 60, 10);
        seeded_rel(&mut db, &mut i, small, 3, 3);
        let planned = JoinProgram::compile_with_stats(&rule, None, &db.plan_stats());
        assert_eq!(planned.atom_order(), vec![1, 0]);
        // Big now runs with column 1 bound, so its signature demands the
        // per-column index, not a scan.
        assert_eq!(planned.ops[1].sig, 0b10);
    }

    #[test]
    fn magic_predicates_cost_the_pessimistic_default() {
        use fundb_term::Sym;
        let mut i = Interner::new();
        let edge = Pred(i.intern("Edge"));
        let filler = Pred(i.intern("Filler"));
        let (x, y) = (Var(i.intern("x")), Var(i.intern("y")));
        // Synthetic predicates exactly as the magic rewrite mints them:
        // indices past every interned symbol.
        let adorned = Pred(Sym::synthetic(i.len() as u32));
        let magic = Pred(Sym::synthetic(i.len() as u32 + 1));
        // path_bf(x,y) :- m_path_bf(x), Edge(x,y).
        let rule = Rule::new(
            Atom::new(adorned, vec![Term::Var(x), Term::Var(y)]),
            vec![
                Atom::new(magic, vec![Term::Var(x)]),
                Atom::new(edge, vec![Term::Var(x), Term::Var(y)]),
            ],
        );
        let mut db = Database::new();
        seeded_rel(&mut db, &mut i, edge, 40, 8);
        seeded_rel(&mut db, &mut i, filler, 100, 10);
        // The magic relation exists but is empty at plan time; the
        // snapshot must omit it so it costs the pessimistic default
        // (total rows, 140 here), not a genuinely-zero scan.
        db.relation_mut(magic, 1);
        let stats = db.plan_stats();
        assert!(stats.get(magic).is_none());
        let planned = JoinProgram::compile_with_stats(&rule, None, &stats);
        // The full program runs in the first round, where the snapshot
        // proves the guard is empty: it costs a near-empty scan and stays
        // hoisted above known Edge (40 rows). That is also the sideways
        // information-passing order the magic rewrite intends: demand
        // guards filter first.
        assert_eq!(planned.atom_order(), vec![0, 1]);
        assert_eq!(planned.ops[1].sig, 0b1);
        // The delta program for the growing magic relation hoists the
        // delta atom outermost, as every delta program does.
        let delta = JoinProgram::compile_with_stats(&rule, Some(0), &stats);
        assert_eq!(delta.atom_order(), vec![0, 1]);
    }

    #[test]
    fn hysteresis_keeps_greedy_on_equal_estimates() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let r = Pred(i.intern("R"));
        let (x, y, z) = (Var(i.intern("x")), Var(i.intern("y")), Var(i.intern("z")));
        // R(x,z) :- P(x,y), Q(y,z) with P and Q statistically identical:
        // the cascade estimates of both orders tie exactly, so the planner
        // must not flip the written (greedy) order on a coin-toss.
        let rule = Rule::new(
            Atom::new(r, vec![Term::Var(x), Term::Var(z)]),
            vec![
                Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(q, vec![Term::Var(y), Term::Var(z)]),
            ],
        );
        let mut db = Database::new();
        seeded_rel(&mut db, &mut i, p, 20, 5);
        seeded_rel(&mut db, &mut i, q, 20, 5);
        let planned = JoinProgram::compile_with_stats(&rule, None, &db.plan_stats());
        assert_eq!(
            planned.atom_order(),
            JoinProgram::compile(&rule, None).atom_order()
        );
    }

    #[test]
    fn shared_prefixes_are_structural() {
        let mut i = Interner::new();
        let e = Pred(i.intern("E"));
        let s = Pred(i.intern("S"));
        let (t, u) = (Pred(i.intern("T")), Pred(i.intern("U")));
        let (x, y, z) = (Var(i.intern("x")), Var(i.intern("y")), Var(i.intern("z")));
        // T(x,y) :- E(x,y), S(x).   U(x,z) :- E(x,y), Z(y,z).
        // Both bodies start with the same unrestricted E scan loading the
        // same registers, so the compiled prefixes coincide for one op.
        let r1 = Rule::new(
            Atom::new(t, vec![Term::Var(x), Term::Var(y)]),
            vec![
                Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(s, vec![Term::Var(x)]),
            ],
        );
        let r2 = Rule::new(
            Atom::new(u, vec![Term::Var(x), Term::Var(z)]),
            vec![
                Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(Pred(i.intern("Z")), vec![Term::Var(y), Term::Var(z)]),
            ],
        );
        let p1 = JoinProgram::compile(&r1, Some(0));
        let p2 = JoinProgram::compile(&r2, Some(0));
        assert_eq!(p1.shared_prefix_len(&p2), 1);
        assert_eq!(p2.shared_prefix_len(&p1), 1);
        assert_eq!(p1.shared_prefix_len(&p1), p1.op_len());
        // A program over a different leading predicate shares nothing.
        let r3 = Rule::new(
            Atom::new(t, vec![Term::Var(x), Term::Var(y)]),
            vec![
                Atom::new(s, vec![Term::Var(x)]),
                Atom::new(e, vec![Term::Var(x), Term::Var(y)]),
            ],
        );
        let p3 = JoinProgram::compile_ordered(&r3, &[0, 1]);
        assert_eq!(p1.shared_prefix_len(&p3), 0);
    }

    #[test]
    fn probe_estimates_scale_with_candidates() {
        let mut i = Interner::new();
        let rule = tc_right(&mut i);
        let mut db = Database::new();
        let edge = rule.body[0].pred;
        let path = rule.body[1].pred;
        seeded_rel(&mut db, &mut i, edge, 40, 40);
        seeded_rel(&mut db, &mut i, path, 40, 40);
        let stats = db.plan_stats();
        // Delta on Edge: the Path probe runs with its first column bound
        // (distinct ≈ rows, so ≈1 candidate): ≈2 probes per delta row.
        let prog = JoinProgram::compile_with_stats(&rule, Some(0), &stats);
        let est = prog.estimate_probes_per_delta_row(&stats);
        assert!((1.0..=4.0).contains(&est), "est = {est}");
        // Cold stats make the inner atom pessimistic: the estimate grows.
        let cold = prog.estimate_probes_per_delta_row(&PlanStats::empty());
        assert!(cold > est);
    }

    #[test]
    fn all_constant_atoms_run_first_and_probe_fully_bound() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let r = Pred(i.intern("R"));
        let (x, y) = (Var(i.intern("x")), Var(i.intern("y")));
        let (a, b) = (Cst(i.intern("a")), Cst(i.intern("b")));
        // R(x,y) :- P(x, y), Q(a, b): the fully-constant atom estimates at
        // most one candidate, so the planner hoists it even from last place.
        let rule = Rule::new(
            Atom::new(r, vec![Term::Var(x), Term::Var(y)]),
            vec![
                Atom::new(p, vec![Term::Var(x), Term::Var(y)]),
                Atom::new(q, vec![Term::Const(a), Term::Const(b)]),
            ],
        );
        let mut db = Database::new();
        seeded_rel(&mut db, &mut i, p, 40, 8);
        db.insert(q, &[a, b]);
        let planned = JoinProgram::compile_with_stats(&rule, None, &db.plan_stats());
        assert_eq!(planned.atom_order(), vec![1, 0]);
        assert_eq!(planned.ops[0].sig, 0b11);
        assert_eq!(planned.ops[0].key, vec![Slot::Const(a), Slot::Const(b)]);
    }

    #[test]
    fn single_atom_rules_plan_trivially() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let x = Var(i.intern("x"));
        let rule = Rule::new(
            Atom::new(q, vec![Term::Var(x)]),
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        let mut db = Database::new();
        db.insert(p, &[Cst(i.intern("a"))]);
        let stats = db.plan_stats();
        for delta in [None, Some(0)] {
            assert_eq!(
                JoinProgram::compile_with_stats(&rule, delta, &stats).atom_order(),
                vec![0]
            );
        }
    }

    #[test]
    fn delta_atom_stays_outermost_even_when_expensive() {
        let mut i = Interner::new();
        let rule = tc_right(&mut i);
        let mut db = Database::new();
        // Edge tiny, Path huge: cost alone would hoist Edge, but the delta
        // atom must stay first for chunked ranges to partition the work.
        let edge = rule.body[0].pred;
        let path = rule.body[1].pred;
        seeded_rel(&mut db, &mut i, edge, 2, 2);
        seeded_rel(&mut db, &mut i, path, 80, 10);
        let planned = JoinProgram::compile_with_stats(&rule, Some(1), &db.plan_stats());
        assert_eq!(planned.atom_order(), vec![1, 0]);
    }

    #[test]
    fn unbound_head_vars_become_unbound_slots() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let (x, y) = (Var(i.intern("x")), Var(i.intern("y")));
        let rule = Rule::new(
            Atom::new(q, vec![Term::Var(y)]),
            vec![Atom::new(p, vec![Term::Var(x)])],
        );
        let prog = JoinProgram::compile(&rule, None);
        assert_eq!(prog.head, vec![HeadSlot::Unbound]);
    }
}
