#![warn(missing_docs)]
//! A function-free Datalog substrate.
//!
//! The paper positions functional deductive databases as an extension of
//! DATALOG (§1): "rules in functional deductive databases are Horn and
//! predicates can have arbitrary unary and limited k-ary function symbols in
//! one fixed position". This crate provides the DATALOG base the extension is
//! built on:
//!
//! * [`Relation`]s of constant tuples with set semantics,
//! * positive Horn [`Rule`]s over [`Atom`]s with variables and constants,
//! * naive and semi-naive bottom-up fixpoint evaluation ([`evaluate`],
//!   [`evaluate_naive`]), resumable across fact insertions via
//!   [`IncrementalEval`] and [`DeltaPlan`],
//! * conjunctive [`query`] evaluation over a database.
//!
//! It is used by `fundb-core` in three roles: the *local* rule firings of the
//! least-fixpoint engine are Datalog evaluations over location-tagged
//! predicates; the bounded-depth naive materialization baseline (the
//! behaviour of a conventional engine on unsafe programs, cf. [RBS87])
//! grounds functional programs into Datalog; and the CONGR canonical form of
//! §3.6 is evaluated over a bounded term universe as Datalog.

pub mod engine;
pub mod governor;
pub mod magic;
pub mod program;
pub mod provenance;
pub mod rel;
pub mod retract;
pub mod rule;

#[doc(hidden)]
pub use engine::evaluate_naive_interpreted;
pub use engine::{
    default_threads, evaluate, evaluate_governed, evaluate_naive, evaluate_naive_governed, query,
    query_governed, DeltaPlan, EvalStats, IncrementalEval, ReplanEvent, RoundSink,
    DEFAULT_MIN_PARALLEL_ROWS,
};
pub use engine::{query_demand, query_demand_governed, query_demand_tuned, DemandAnswer};
pub use governor::{
    Budget, CancelToken, EvalError, FaultPlan, Governor, Resource, PROBE_CHECK_INTERVAL,
};
pub use magic::{magic_rewrite, MagicProgram};
pub use program::JoinProgram;
pub use provenance::{
    evaluate_traced, evaluate_traced_governed, Derivation, Justification, Provenance,
};
pub use rel::{Database, PlanStats, Probe, RelStats, Relation, RowId, RowPool, Tuple};
pub use retract::RetractOutcome;
pub use rule::{Atom, Rule, Term};
