//! Relations and databases of constant tuples over a pooled row-store.
//!
//! Tuples live in a [`RowPool`]: a flat `Vec<Cst>` arena where row `i` of an
//! arity-`a` relation occupies `data[i*a .. (i+1)*a]`. Each tuple's constants
//! are stored exactly once; duplicate elimination goes through a
//! hash-of-slice table mapping a row hash to the [`RowId`]s carrying it (the
//! candidate rows are compared against the arena, so no second owned copy of
//! the tuple ever exists), and the per-column indexes keep pushing `u32`
//! row ids.

use fundb_term::{Cst, FxHashMap, FxHasher, Interner, Pred};
use std::fmt;
use std::hash::Hasher;

/// An owned tuple of constants, used at API boundaries that must carry rows
/// outside a relation (provenance records, staged insertions). Inside a
/// [`Relation`] rows are pooled and only ever borrowed as `&[Cst]`.
pub type Tuple = Box<[Cst]>;

/// Handle to one row of a [`RowPool`] (dense insertion index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RowId(pub u32);

impl RowId {
    /// The dense index of this row (0-based insertion order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Flat arena of fixed-arity rows: row `i` is `data[i*arity .. (i+1)*arity]`.
#[derive(Clone, Debug, Default)]
pub struct RowPool {
    arity: usize,
    data: Vec<Cst>,
}

impl RowPool {
    /// An empty pool of the given arity.
    pub fn new(arity: usize) -> Self {
        RowPool {
            arity,
            data: Vec::new(),
        }
    }

    /// Number of rows in the pool. Arity-0 rows occupy no arena space, so
    /// for them the count lives in the owning relation and this reports 0.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.arity).unwrap_or(0)
    }

    /// Whether the pool holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes held by the constant arena (the dominant row-store cost; the
    /// governor's byte budget is built on this).
    #[inline]
    pub fn approx_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Cst>()
    }

    /// The row at dense index `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[Cst] {
        let a = self.arity;
        &self.data[i * a..i * a + a]
    }

    /// The contiguous cell slice of every row at or after index `from`
    /// (empty for arity-0 pools, whose rows occupy no arena space).
    #[inline]
    pub fn cells_from(&self, from: usize) -> &[Cst] {
        &self.data[(from * self.arity).min(self.data.len())..]
    }

    /// Appends a row, returning its handle. The caller is responsible for
    /// deduplication.
    fn push(&mut self, t: &[Cst], next_id: usize) -> RowId {
        debug_assert_eq!(t.len(), self.arity);
        self.data.extend_from_slice(t);
        RowId(u32::try_from(next_id).expect("relation overflow"))
    }
}

/// Reads bit `i` of a packed word bitmap (absent words read as zero).
#[inline]
fn bit_get(words: &[u64], i: usize) -> bool {
    words.get(i / 64).is_some_and(|w| w & (1 << (i % 64)) != 0)
}

/// Writes bit `i` of a packed word bitmap, growing it as needed.
#[inline]
fn bit_set(words: &mut Vec<u64>, i: usize, v: bool) {
    let w = i / 64;
    if words.len() <= w {
        words.resize(w + 1, 0);
    }
    if v {
        words[w] |= 1 << (i % 64);
    } else {
        words[w] &= !(1 << (i % 64));
    }
}

/// Inserts `id` into an ascending id vector, keeping it sorted. Buckets are
/// normally appended to with strictly increasing ids; only slot reclamation
/// re-introduces an old id in the middle.
#[inline]
fn insert_sorted(bucket: &mut Vec<u32>, id: u32) {
    match bucket.last() {
        Some(&last) if last >= id => {
            if let Err(pos) = bucket.binary_search(&id) {
                bucket.insert(pos, id);
            }
        }
        _ => bucket.push(id),
    }
}

/// Removes `id` from an ascending id vector; returns `true` when the bucket
/// is left empty (so the caller can drop the map entry and keep
/// distinct-value counts exact under deletion).
#[inline]
fn remove_sorted(bucket: &mut Vec<u32>, id: u32) -> bool {
    if let Ok(pos) = bucket.binary_search(&id) {
        bucket.remove(pos);
    }
    bucket.is_empty()
}

/// Fx hash of a row's constants, used to key the dedup table.
#[inline]
pub(crate) fn hash_row(t: &[Cst]) -> u64 {
    let mut h = FxHasher::default();
    for c in t {
        h.write_usize(c.index());
    }
    h.finish()
}

/// Fx hash of the columns of `row` selected by `sig` (ascending column
/// order), used to key a composite index.
#[inline]
fn hash_sig_cols(row: &[Cst], sig: u64) -> u64 {
    let mut h = FxHasher::default();
    let mut bits = sig;
    while bits != 0 {
        let col = bits.trailing_zeros() as usize;
        h.write_usize(row[col].index());
        bits &= bits - 1;
    }
    h.finish()
}

/// Fx hash of an already-extracted composite key (the bound values in
/// ascending column order). Must agree with [`hash_sig_cols`].
#[inline]
fn hash_key(key: &[Cst]) -> u64 {
    let mut h = FxHasher::default();
    for c in key {
        h.write_usize(c.index());
    }
    h.finish()
}

/// Bits in a per-signature bloom filter. Small enough to build eagerly for
/// every composite index (1 KiB), large enough that the key populations the
/// evaluator sees (thousands of distinct composite keys at most) keep the
/// false-positive rate low; a false positive only costs the hash-map lookup
/// the filter would have skipped, never an answer.
const BLOOM_BITS: u64 = 8192;

/// `u64` words backing one bloom filter.
const BLOOM_WORDS: usize = (BLOOM_BITS / 64) as usize;

/// A fixed-size two-probe bloom filter over 64-bit composite-key hashes.
/// Membership is approximate in one direction only: `may_contain` returning
/// `false` proves the key hash was never inserted, so a pre-probe rejection
/// can skip the hash-bucket walk without ever losing a candidate row.
#[derive(Clone)]
struct Bloom {
    words: Box<[u64; BLOOM_WORDS]>,
}

impl Bloom {
    fn new() -> Bloom {
        Bloom {
            words: Box::new([0u64; BLOOM_WORDS]),
        }
    }

    /// The two bit positions probed for a key hash: the low bits and the
    /// high bits of the (already well-mixed) Fx key hash.
    #[inline]
    fn bits(h: u64) -> (u64, u64) {
        (h & (BLOOM_BITS - 1), (h >> 32) & (BLOOM_BITS - 1))
    }

    #[inline]
    fn insert(&mut self, h: u64) {
        let (a, b) = Bloom::bits(h);
        self.words[(a / 64) as usize] |= 1 << (a % 64);
        self.words[(b / 64) as usize] |= 1 << (b % 64);
    }

    #[inline]
    fn may_contain(&self, h: u64) -> bool {
        let (a, b) = Bloom::bits(h);
        self.words[(a / 64) as usize] & (1 << (a % 64)) != 0
            && self.words[(b / 64) as usize] & (1 << (b % 64)) != 0
    }
}

impl fmt::Debug for Bloom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let set: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        write!(f, "Bloom({set}/{BLOOM_BITS} bits)")
    }
}

/// A set-semantics relation of fixed arity.
///
/// Rows are stored once, in insertion order, in a [`RowPool`] (so evaluation
/// is deterministic and semi-naive deltas are contiguous suffixes of the
/// arena). A hash-of-slice table dedups inserts without materializing a
/// second copy, and per-column hash indexes let selections with bound
/// columns avoid full scans.
#[derive(Clone, Debug)]
pub struct Relation {
    pool: RowPool,
    len: usize,
    /// `dedup[hash_row(t)]` = ids of rows hashing to that value; candidates
    /// are confirmed by comparing slices in the pool.
    dedup: FxHashMap<u64, Vec<u32>>,
    /// `index[col][value]` = ids of rows with `row[col] == value`.
    index: Vec<FxHashMap<Cst, Vec<u32>>>,
    /// On-demand composite indexes, keyed by a column-signature bitmask
    /// (bit `i` set = column `i` participates in the key):
    /// `composite[sig][hash of the sig columns]` = ids of matching rows.
    /// Built lazily by [`Relation::ensure_composite`], then maintained
    /// incrementally on insert. Buckets are hash-of-key, so probes must
    /// still confirm the candidate rows (exactly like `dedup`).
    composite: FxHashMap<u64, FxHashMap<u64, Vec<u32>>>,
    /// One bloom filter per built composite index, over the same key
    /// hashes. Consulted before the bucket lookup: a rejection proves no
    /// row carries the key, so guaranteed-miss probes cost two bit tests.
    /// Invariant: `blooms` has exactly the keys of `composite`.
    blooms: FxHashMap<u64, Bloom>,
    /// `max_bucket[col]` = size of the largest bucket in `index[col]`,
    /// maintained on insert. Together with `index[col].len()` (the distinct
    /// value count) this is the per-column statistic the compile-time cost
    /// model in `program.rs` consumes: `rows / distinct` is the uniform
    /// selectivity estimate and `max_bucket` its worst-case (skew) clamp.
    max_bucket: Vec<usize>,
    /// Per-column 64-bit hash sketches of the values inserted since the
    /// last [`Relation::live_stats`] snapshot: bit `hash(v) % 64` is set
    /// for every inserted value `v`, so the popcount is a (saturating at
    /// 64) distinct-count estimate for the recent delta. Maintained on
    /// insert, taken-and-cleared by the live snapshot — no rescan ever.
    delta_sketch: Vec<u64>,
    /// Tombstone bitmap over dense row ids: a set bit marks a retracted
    /// row. Tombstoned rows stay in the arena (RowIds stay stable and
    /// reads stay borrowed slices) but are invisible to scans, selects,
    /// probes, membership, and dumps; the slot is reclaimed when an equal
    /// tuple is re-asserted and physically dropped only by
    /// [`Relation::compact`].
    tomb: Vec<u64>,
    /// Number of tombstoned rows (`live() == len - dead`).
    dead: usize,
    /// Dedup buckets of *tombstoned* rows (row hash → ascending row ids):
    /// the free list. Re-inserting an equal tuple reclaims its original
    /// slot and RowId instead of appending a duplicate.
    tomb_dedup: FxHashMap<u64, Vec<u32>>,
    /// Asserted bitmap: a set bit marks a row inserted as a base (EDB)
    /// fact rather than derived by a rule. Retraction never cascades over
    /// asserted rows — they have support independent of any derivation.
    asserted: Vec<u64>,
    /// Bumped whenever a row below the dense high-water mark comes back to
    /// life through a public insert (slot reclamation) or row ids are
    /// renumbered ([`Relation::compact`]). Incremental evaluators compare
    /// this against their recorded value and reset the predicate's
    /// low-water mark when it moved, so resurrected rows are re-processed.
    reuse_epoch: u64,
    /// Row ids revived through public-insert slot reclamation, in
    /// reclamation order; cleared by [`Relation::compact`] (the ids it
    /// holds are renumbered away). Incremental evaluators keep a cursor
    /// into this log so an epoch move re-feeds exactly the reclaimed
    /// rows as delta instead of rescanning the whole relation.
    reclaimed: Vec<u32>,
    /// Number of [`Relation::compact`] renumberings so far; a moved
    /// value invalidates every row id and reclaim cursor an evaluator
    /// recorded, forcing the conservative full rescan.
    compactions: u64,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            pool: RowPool::new(arity),
            len: 0,
            dedup: FxHashMap::default(),
            index: (0..arity).map(|_| FxHashMap::default()).collect(),
            composite: FxHashMap::default(),
            blooms: FxHashMap::default(),
            max_bucket: vec![0; arity],
            delta_sketch: vec![0; arity],
            tomb: Vec::new(),
            dead: 0,
            tomb_dedup: FxHashMap::default(),
            asserted: Vec::new(),
            reuse_epoch: 0,
            reclaimed: Vec::new(),
            compactions: 0,
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.pool.arity
    }

    /// The dense high-water mark: the number of arena slots, including
    /// tombstoned ones. Row ids are always `< len()`, and rows appended
    /// after a caller's saved `len()` form the contiguous semi-naive delta
    /// — tombstones never change this. Equal to [`Relation::live`] when
    /// nothing has been retracted.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Number of live (non-tombstoned) tuples.
    #[inline]
    pub fn live(&self) -> usize {
        self.len - self.dead
    }

    /// Number of tombstoned rows still occupying arena slots (reclaimed on
    /// equal re-insert, dropped by [`Relation::compact`]).
    #[inline]
    pub fn dead(&self) -> usize {
        self.dead
    }

    /// See the `reuse_epoch` field: moves when row ids below the dense
    /// high-water mark are revived or renumbered.
    #[inline]
    pub fn reuse_epoch(&self) -> u64 {
        self.reuse_epoch
    }

    /// See the `reclaimed` field: slot ids revived through public-insert
    /// reclamation since the last compaction, in reclamation order.
    #[inline]
    pub(crate) fn reclaimed_log(&self) -> &[u32] {
        &self.reclaimed
    }

    /// See the `compactions` field: renumberings so far.
    #[inline]
    pub(crate) fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Whether the relation has no live tuples.
    pub fn is_empty(&self) -> bool {
        self.live() == 0
    }

    /// Whether row `id` is currently tombstoned.
    #[inline]
    pub fn is_tombstoned(&self, id: RowId) -> bool {
        bit_get(&self.tomb, id.index())
    }

    /// Whether row `id` was inserted as a base (asserted) fact.
    #[inline]
    pub fn is_asserted(&self, id: RowId) -> bool {
        bit_get(&self.asserted, id.index())
    }

    /// Number of distinct values in column `col` (the size of its
    /// per-column index — maintained for free on every insert).
    pub fn distinct(&self, col: usize) -> usize {
        self.index[col].len()
    }

    /// Size of the largest per-value bucket in column `col`'s index: the
    /// worst-case number of rows a single-column probe on `col` can return.
    /// Maintained incrementally on insert.
    pub fn max_bucket(&self, col: usize) -> usize {
        self.max_bucket[col]
    }

    /// A point-in-time cardinality snapshot of this relation for the
    /// compile-time cost model. Delta statistics are zeroed: plain
    /// snapshots describe the whole relation, not a recent increment (see
    /// [`Relation::live_stats`] for the adaptive-execution variant).
    ///
    /// Under deletion, `rows` is decremented exactly (it counts live rows)
    /// and `distinct` stays exact (index entries whose bucket empties are
    /// dropped); `max_bucket` is an upper bound — it records the largest
    /// bucket ever held, and retraction does not shrink it until
    /// [`Relation::maybe_resketch`] or [`Relation::compact`] recomputes it.
    pub fn stats(&self) -> RelStats {
        RelStats {
            rows: self.live(),
            distinct: (0..self.arity()).map(|c| self.distinct(c)).collect(),
            max_bucket: self.max_bucket.clone(),
            delta_rows: 0,
            delta_distinct: Vec::new(),
        }
    }

    /// A live snapshot for mid-run re-planning: whole-relation statistics
    /// plus the delta since the caller's low-water `mark` (`delta_rows`) and
    /// the per-column distinct sketch popcounts accumulated since the last
    /// live snapshot. Taking the snapshot clears the sketches, so the next
    /// snapshot describes the next increment; everything here is maintained
    /// on insert — no rescan.
    pub fn live_stats(&mut self, mark: usize) -> RelStats {
        let delta_distinct = self
            .delta_sketch
            .iter_mut()
            .map(|w| {
                let n = w.count_ones() as usize;
                *w = 0;
                n
            })
            .collect();
        RelStats {
            rows: self.live(),
            distinct: (0..self.arity()).map(|c| self.distinct(c)).collect(),
            max_bucket: self.max_bucket.clone(),
            delta_rows: self.len.saturating_sub(mark),
            delta_distinct,
        }
    }

    /// Approximate resident bytes: the arena plus one `u32` posting per row
    /// in the dedup table, each per-column index, and each built composite
    /// index. Hash-map headers and bucket slack are deliberately ignored —
    /// the byte budget needs a monotone, cheap estimate, not an allocator
    /// audit.
    pub fn approx_bytes(&self) -> usize {
        let postings = 1 + self.arity() + self.composite.len();
        self.pool.approx_bytes() + self.len * postings * std::mem::size_of::<u32>()
    }

    /// Inserts a tuple as an asserted (base) fact; returns its handle if
    /// it was new. Re-inserting a tuple whose retracted row still occupies
    /// an arena slot *reclaims* that slot — the tuple gets its old RowId
    /// back (free-list reuse) — and bumps the reuse epoch so incremental
    /// evaluators re-process the resurrected row. Inserting a tuple that
    /// is already live (re)marks it asserted.
    pub fn insert_row(&mut self, t: &[Cst]) -> Option<RowId> {
        match self.insert_internal(t, true) {
            Some(id) => {
                bit_set(&mut self.asserted, id.index(), true);
                Some(id)
            }
            None => {
                if let Some(id) = self.find(t) {
                    bit_set(&mut self.asserted, id.index(), true);
                }
                None
            }
        }
    }

    /// Inserts a tuple derived by a rule; returns its handle if it was
    /// new. Never reclaims a tombstoned slot (derived rows always append,
    /// so a round's fresh rows stay a contiguous arena suffix) and leaves
    /// the asserted bit clear: retraction may cascade over derived rows.
    pub fn insert_derived_row(&mut self, t: &[Cst]) -> Option<RowId> {
        self.insert_internal(t, false)
    }

    fn insert_internal(&mut self, t: &[Cst], reclaim: bool) -> Option<RowId> {
        assert_eq!(t.len(), self.arity(), "arity mismatch on insert");
        let h = hash_row(t);
        if let Some(bucket) = self.dedup.get(&h) {
            if bucket.iter().any(|&i| self.pool.row(i as usize) == t) {
                return None;
            }
        }
        if reclaim {
            if let Some(ids) = self.tomb_dedup.get(&h) {
                if let Some(&id) = ids.iter().find(|&&i| self.pool.row(i as usize) == t) {
                    self.revive(id);
                    self.reuse_epoch += 1;
                    self.reclaimed.push(id);
                    return Some(RowId(id));
                }
            }
        }
        let id = self.pool.push(t, self.len);
        self.dedup.entry(h).or_default().push(id.0);
        self.len += 1;
        for (col, &v) in t.iter().enumerate() {
            let bucket = self.index[col].entry(v).or_default();
            bucket.push(id.0);
            if bucket.len() > self.max_bucket[col] {
                self.max_bucket[col] = bucket.len();
            }
            let mut sh = FxHasher::default();
            sh.write_usize(v.index());
            self.delta_sketch[col] |= 1 << (sh.finish() & 63);
        }
        for (&sig, map) in &mut self.composite {
            let kh = hash_sig_cols(t, sig);
            map.entry(kh).or_default().push(id.0);
            if let Some(bloom) = self.blooms.get_mut(&sig) {
                bloom.insert(kh);
            }
        }
        Some(id)
    }

    /// Inserts a tuple as an asserted fact; returns `true` if it was new.
    pub fn insert(&mut self, t: &[Cst]) -> bool {
        self.insert_row(t).is_some()
    }

    /// Inserts a derived tuple (see [`Relation::insert_derived_row`]);
    /// returns `true` if it was new.
    pub fn insert_derived(&mut self, t: &[Cst]) -> bool {
        self.insert_derived_row(t).is_some()
    }

    /// The live row equal to `t`, if present.
    pub fn find(&self, t: &[Cst]) -> Option<RowId> {
        if t.len() != self.arity() {
            return None;
        }
        self.dedup
            .get(&hash_row(t))
            .and_then(|b| b.iter().copied().find(|&i| self.pool.row(i as usize) == t))
            .map(RowId)
    }

    /// Sets or clears the asserted (base-fact) bit of row `id`.
    pub fn set_asserted(&mut self, id: RowId, v: bool) {
        bit_set(&mut self.asserted, id.index(), v);
    }

    /// Tombstones row `id`: removes it from the dedup table and every
    /// index (per-column and composite buckets, dropping emptied entries
    /// so distinct counts stay exact under deletion), marks the slot dead,
    /// and parks it on the free list. Bloom filters are deliberately left
    /// stale: a deleted key's set bits can only cause false positives (a
    /// wasted bucket walk), never a false reject, so probe soundness is
    /// unaffected; [`Relation::compact`] rebuilds them.
    pub(crate) fn retract_row(&mut self, id: RowId) {
        let i = id.index();
        debug_assert!(i < self.len && !bit_get(&self.tomb, i));
        let t: Vec<Cst> = self.pool.row(i).to_vec();
        let h = hash_row(&t);
        let empty = self
            .dedup
            .get_mut(&h)
            .is_some_and(|b| remove_sorted(b, id.0));
        if empty {
            self.dedup.remove(&h);
        }
        insert_sorted(self.tomb_dedup.entry(h).or_default(), id.0);
        for (col, &v) in t.iter().enumerate() {
            let empty = self.index[col]
                .get_mut(&v)
                .is_some_and(|b| remove_sorted(b, id.0));
            if empty {
                self.index[col].remove(&v);
            }
        }
        for (&sig, map) in self.composite.iter_mut() {
            let kh = hash_sig_cols(&t, sig);
            let empty = map.get_mut(&kh).is_some_and(|b| remove_sorted(b, id.0));
            if empty {
                map.remove(&kh);
            }
        }
        bit_set(&mut self.tomb, i, true);
        self.dead += 1;
    }

    /// Tombstones the live row equal to `t`, if any; returns its id.
    pub fn retract_tuple(&mut self, t: &[Cst]) -> Option<RowId> {
        let id = self.find(t)?;
        self.retract_row(id);
        Some(id)
    }

    /// Un-tombstones row `id` in place (same RowId, same arena slot),
    /// *without* bumping the reuse epoch: used by the retraction passes,
    /// which restore rows whose consequences are already settled by the
    /// over-delete/re-derive fixpoint, and by rollback on an aborted
    /// retraction. The asserted bit is left as-is.
    pub(crate) fn restore_row(&mut self, id: RowId) {
        self.revive(id.0);
    }

    /// Un-tombstones the retracted row equal to `t`, if its slot is still
    /// on the free list; returns its (stable) id. Used by WAL replay to
    /// reproduce a retraction's re-derive restores byte-identically.
    pub fn restore_tuple(&mut self, t: &[Cst]) -> Option<RowId> {
        if t.len() != self.arity() {
            return None;
        }
        let id = self
            .tomb_dedup
            .get(&hash_row(t))
            .and_then(|b| b.iter().copied().find(|&i| self.pool.row(i as usize) == t))?;
        self.revive(id);
        Some(RowId(id))
    }

    /// Brings tombstoned row `id` back to life: off the free list, back
    /// into the dedup table and every index (sorted re-insertion keeps
    /// buckets in ascending id order, so probe enumeration order is
    /// identical to never having retracted).
    fn revive(&mut self, id: u32) {
        debug_assert!(bit_get(&self.tomb, id as usize));
        let t: Vec<Cst> = self.pool.row(id as usize).to_vec();
        let h = hash_row(&t);
        let empty = self
            .tomb_dedup
            .get_mut(&h)
            .is_some_and(|b| remove_sorted(b, id));
        if empty {
            self.tomb_dedup.remove(&h);
        }
        bit_set(&mut self.tomb, id as usize, false);
        self.dead -= 1;
        insert_sorted(self.dedup.entry(h).or_default(), id);
        for (col, &v) in t.iter().enumerate() {
            let bucket = self.index[col].entry(v).or_default();
            insert_sorted(bucket, id);
            if bucket.len() > self.max_bucket[col] {
                self.max_bucket[col] = bucket.len();
            }
            let mut sh = FxHasher::default();
            sh.write_usize(v.index());
            self.delta_sketch[col] |= 1 << (sh.finish() & 63);
        }
        for (&sig, map) in self.composite.iter_mut() {
            let kh = hash_sig_cols(&t, sig);
            insert_sorted(map.entry(kh).or_default(), id);
            if let Some(bloom) = self.blooms.get_mut(&sig) {
                bloom.insert(kh);
            }
        }
    }

    /// Re-derives the skew statistics once tombstones exceed 25% of the
    /// arena: recomputes `max_bucket` exactly from the live index buckets
    /// (insertion maintains it as a high-water mark, which deletion turns
    /// into an upper bound) and clears the delta sketches, erring toward
    /// "nothing recent" rather than counting deleted values. Returns
    /// whether a recompute happened.
    pub fn maybe_resketch(&mut self) -> bool {
        if self.len == 0 || self.dead * 4 <= self.len {
            return false;
        }
        for col in 0..self.arity() {
            self.max_bucket[col] = self.index[col].values().map(Vec::len).max().unwrap_or(0);
            self.delta_sketch[col] = 0;
        }
        true
    }

    /// Physically drops tombstoned rows: live rows are renumbered densely
    /// in their existing order, every index (dedup, per-column, composite)
    /// is rebuilt, and the bloom filters are rebuilt over live keys only —
    /// the rebuild-on-compaction hook that stops `bloom_skips` decaying to
    /// zero on churny relations. Row ids change, so the reuse epoch is
    /// bumped. Returns `true` if anything was dropped.
    pub fn compact(&mut self) -> bool {
        if self.dead == 0 {
            return false;
        }
        let arity = self.arity();
        let sigs: Vec<u64> = self.composite.keys().copied().collect();
        let mut pool = RowPool::new(arity);
        let mut asserted = Vec::new();
        let mut n = 0usize;
        for i in 0..self.len {
            if bit_get(&self.tomb, i) {
                continue;
            }
            pool.push(self.pool.row(i), n);
            if bit_get(&self.asserted, i) {
                bit_set(&mut asserted, n, true);
            }
            n += 1;
        }
        self.pool = pool;
        self.len = n;
        self.dead = 0;
        self.tomb.clear();
        self.tomb_dedup.clear();
        self.asserted = asserted;
        self.dedup.clear();
        for col in 0..arity {
            self.index[col].clear();
            self.max_bucket[col] = 0;
            self.delta_sketch[col] = 0;
        }
        self.composite.clear();
        self.blooms.clear();
        for i in 0..n {
            let t: Vec<Cst> = self.pool.row(i).to_vec();
            self.dedup.entry(hash_row(&t)).or_default().push(i as u32);
            for (col, &v) in t.iter().enumerate() {
                let bucket = self.index[col].entry(v).or_default();
                bucket.push(i as u32);
                if bucket.len() > self.max_bucket[col] {
                    self.max_bucket[col] = bucket.len();
                }
            }
        }
        for sig in sigs {
            self.ensure_composite(sig);
        }
        self.reuse_epoch += 1;
        self.reclaimed.clear();
        self.compactions += 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, t: &[Cst]) -> bool {
        if t.len() != self.arity() {
            return false;
        }
        self.dedup
            .get(&hash_row(t))
            .is_some_and(|bucket| bucket.iter().any(|&i| self.row(RowId(i)) == t))
    }

    /// The row carried by a handle.
    #[inline]
    pub fn row(&self, id: RowId) -> &[Cst] {
        debug_assert!(id.index() < self.len);
        self.pool.row(id.index())
    }

    /// All tuples in insertion order.
    pub fn rows(&self) -> Rows<'_> {
        self.rows_range(0, self.len)
    }

    /// Tuples inserted at or after index `from` (the semi-naive delta).
    pub fn rows_from(&self, from: usize) -> Rows<'_> {
        self.rows_range(from, self.len)
    }

    /// The flat cell slice of every tuple at or after index `from` — rows
    /// are contiguous in the arena, `arity` cells each, in insertion
    /// order. The durable-storage sink bulk-copies a round's new rows from
    /// here instead of re-walking them tuple by tuple. Empty for arity-0
    /// relations (their rows occupy no arena space; use
    /// [`Relation::len`]).
    #[inline]
    pub fn cells_from(&self, from: usize) -> &[Cst] {
        self.pool.cells_from(from)
    }

    /// Tuples with dense indexes in `from..to` (a delta chunk), skipping
    /// tombstoned rows. Tombstone-free relations pay nothing for the skip
    /// (the iterator carries an empty bitmap slice).
    pub fn rows_range(&self, from: usize, to: usize) -> Rows<'_> {
        debug_assert!(from <= to && to <= self.len);
        Rows {
            pool: &self.pool,
            next: from,
            end: to,
            tomb: if self.dead == 0 { &[] } else { &self.tomb },
        }
    }

    /// Iterates tuples matching a pattern (`None` = wildcard). Uses the
    /// per-column index of the most selective bound column when there is
    /// one, falling back to a scan otherwise.
    pub fn select<'a, 'p>(&'a self, pattern: &'p [Option<Cst>]) -> Select<'a, 'p> {
        debug_assert_eq!(pattern.len(), self.arity());
        // Pick the bound column with the smallest bucket.
        let best: Option<&[u32]> = pattern
            .iter()
            .enumerate()
            .filter_map(|(col, p)| p.map(|c| self.index[col].get(&c)))
            .map(|bucket| bucket.map_or(&[][..], Vec::as_slice))
            .min_by_key(|b| b.len());
        match best {
            Some(bucket) => Select::Indexed {
                rel: self,
                bucket: bucket.iter(),
                pattern,
            },
            None => Select::Scan {
                rows: self.rows(),
                pattern,
            },
        }
    }

    /// Row ids whose column `col` holds `v` (the always-present per-column
    /// index; an absent value is an empty bucket).
    #[inline]
    pub(crate) fn column_bucket(&self, col: usize, v: Cst) -> &[u32] {
        self.index[col].get(&v).map_or(&[], Vec::as_slice)
    }

    /// Probes the composite index for `sig` at `key_hash`, consulting the
    /// signature's bloom filter before the bucket lookup. A built index
    /// with no such key yields an empty bucket (or a bloom rejection, which
    /// the caller can count separately — both mean zero candidates).
    #[inline]
    pub(crate) fn composite_probe(&self, sig: u64, key_hash: u64) -> CompositeProbe<'_> {
        let Some(map) = self.composite.get(&sig) else {
            return CompositeProbe::NotBuilt;
        };
        if let Some(bloom) = self.blooms.get(&sig) {
            if !bloom.may_contain(key_hash) {
                return CompositeProbe::BloomReject;
            }
        }
        CompositeProbe::Bucket(map.get(&key_hash).map_or(&[][..], Vec::as_slice))
    }

    /// Builds the composite index for `sig` if it does not exist yet.
    /// Single-column signatures are served by the always-present per-column
    /// indexes, so nothing is built for them. Subsequent inserts maintain
    /// the index incrementally.
    pub fn ensure_composite(&mut self, sig: u64) {
        if sig.count_ones() <= 1 || self.composite.contains_key(&sig) {
            return;
        }
        let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut bloom = Bloom::new();
        for i in 0..self.len {
            if self.dead > 0 && bit_get(&self.tomb, i) {
                continue;
            }
            let row = self.pool.row(i);
            let kh = hash_sig_cols(row, sig);
            map.entry(kh).or_default().push(i as u32);
            bloom.insert(kh);
        }
        self.composite.insert(sig, map);
        self.blooms.insert(sig, bloom);
    }

    /// Whether the composite index for `sig` has been built.
    pub fn has_composite(&self, sig: u64) -> bool {
        sig.count_ones() <= 1 || self.composite.contains_key(&sig)
    }

    /// Answers a bound-column probe: `sig` names the bound columns and
    /// `key` holds their values in ascending column order. Returns the
    /// candidate row ids and whether the index fully covered the bound
    /// columns; candidates must still be confirmed against the key (hash
    /// buckets can collide, and a partial cover filters only one column).
    pub fn probe(&self, sig: u64, key: &[Cst]) -> Probe<'_> {
        debug_assert_eq!(sig.count_ones() as usize, key.len());
        if sig == 0 {
            return Probe::Scan;
        }
        if sig.count_ones() == 1 {
            let col = sig.trailing_zeros() as usize;
            let bucket = self.index[col].get(&key[0]).map_or(&[][..], Vec::as_slice);
            return Probe::Index(bucket);
        }
        if let Some(map) = self.composite.get(&sig) {
            let kh = hash_key(key);
            if let Some(bloom) = self.blooms.get(&sig) {
                if !bloom.may_contain(kh) {
                    // Guaranteed miss: the key hash was never inserted.
                    return Probe::Index(&[]);
                }
            }
            let bucket = map.get(&kh).map_or(&[][..], Vec::as_slice);
            return Probe::Index(bucket);
        }
        // No composite index (immutable caller): fall back to the smallest
        // single-column bucket among the bound columns.
        let mut best: &[u32] = &[];
        let mut best_len = usize::MAX;
        let mut bits = sig;
        let mut ki = 0;
        while bits != 0 {
            let col = bits.trailing_zeros() as usize;
            let bucket = self.index[col].get(&key[ki]).map_or(&[][..], Vec::as_slice);
            if bucket.len() < best_len {
                best = bucket;
                best_len = bucket.len();
            }
            bits &= bits - 1;
            ki += 1;
        }
        Probe::Partial(best)
    }
}

/// Result of [`Relation::composite_probe`]: like the composite arm of
/// [`Relation::probe`], but distinguishes bloom rejections (so the compiled
/// executor can count `bloom_skips`) and never falls back to partial
/// single-column buckets (the executor owns that policy).
#[derive(Clone, Debug)]
pub(crate) enum CompositeProbe<'a> {
    /// The composite index for this signature was never built.
    NotBuilt,
    /// The signature's bloom filter proves no row carries this key hash:
    /// zero candidates, without touching the bucket map.
    BloomReject,
    /// Candidate row ids from the hash bucket (possibly empty); they still
    /// need a confirm pass against the actual key.
    Bucket(&'a [u32]),
}

/// Result of [`Relation::probe`]: candidate row ids for a bound-column
/// selection, tagged by how much of the key the index covered.
#[derive(Clone, Debug)]
pub enum Probe<'a> {
    /// All bound columns are covered (per-column index for one bound
    /// column, composite index otherwise); candidates still need a confirm
    /// pass because composite buckets are keyed by hash.
    Index(&'a [u32]),
    /// Only the most selective single bound column filtered the candidates;
    /// the probe must re-check every bound column.
    Partial(&'a [u32]),
    /// No bound columns: the caller scans the relation.
    Scan,
}

/// Iterator over a contiguous range of a relation's rows, skipping
/// tombstoned slots. `tomb` is the empty slice for tombstone-free
/// relations, so the common case stays a branch on an empty-slice check.
#[derive(Clone, Debug)]
pub struct Rows<'a> {
    pool: &'a RowPool,
    next: usize,
    end: usize,
    tomb: &'a [u64],
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [Cst];

    #[inline]
    fn next(&mut self) -> Option<&'a [Cst]> {
        while self.next != self.end {
            let i = self.next;
            self.next += 1;
            if !self.tomb.is_empty() && bit_get(self.tomb, i) {
                continue;
            }
            return Some(self.pool.row(i));
        }
        None
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.next;
        if self.tomb.is_empty() {
            (n, Some(n))
        } else {
            (0, Some(n))
        }
    }
}

fn pattern_matches(row: &[Cst], pattern: &[Option<Cst>]) -> bool {
    row.iter()
        .zip(pattern)
        .all(|(v, p)| p.is_none_or(|c| c == *v))
}

/// Iterator returned by [`Relation::select`]: either walks an index bucket
/// or scans the whole pool, filtering by the pattern either way.
pub enum Select<'a, 'p> {
    /// Walking the bucket of the most selective bound column.
    Indexed {
        /// The relation being selected from.
        rel: &'a Relation,
        /// Remaining row ids in the chosen bucket.
        bucket: std::slice::Iter<'a, u32>,
        /// The selection pattern (`None` = wildcard).
        pattern: &'p [Option<Cst>],
    },
    /// No bound column: full scan.
    Scan {
        /// Remaining rows.
        rows: Rows<'a>,
        /// The selection pattern (`None` = wildcard).
        pattern: &'p [Option<Cst>],
    },
}

impl<'a> Iterator for Select<'a, '_> {
    type Item = &'a [Cst];

    fn next(&mut self) -> Option<&'a [Cst]> {
        match self {
            Select::Indexed {
                rel,
                bucket,
                pattern,
            } => bucket
                .by_ref()
                .map(|&i| rel.row(RowId(i)))
                .find(|row| pattern_matches(row, pattern)),
            Select::Scan { rows, pattern } => {
                rows.by_ref().find(|row| pattern_matches(row, pattern))
            }
        }
    }
}

/// A point-in-time cardinality snapshot of one relation, consumed by the
/// compile-time join cost model in `program.rs`.
///
/// All three statistics are maintained for free by [`Relation::insert_row`]:
/// `rows` is the arena length, `distinct[col]` is the size of the per-column
/// index map, and `max_bucket[col]` is the largest bucket that index has ever
/// held. A snapshot never mutates — plans compiled from it stay fixed for a
/// whole evaluation, which is what keeps parallel runs byte-deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Number of tuples at snapshot time.
    pub rows: usize,
    /// Distinct values per column at snapshot time.
    pub distinct: Vec<usize>,
    /// Largest single-value index bucket per column at snapshot time: the
    /// worst-case fan-out of a one-column probe (skew clamp).
    pub max_bucket: Vec<usize>,
    /// Rows inserted since the caller's low-water mark. Zero in plain
    /// [`Relation::stats`] snapshots; populated by [`Relation::live_stats`]
    /// for mid-run re-planning.
    pub delta_rows: usize,
    /// Per-column distinct-count estimates (popcount of a 64-bit hash
    /// sketch, saturating at 64) for the values inserted since the last
    /// live snapshot. Empty in plain [`Relation::stats`] snapshots.
    pub delta_distinct: Vec<usize>,
}

/// A database-wide statistics snapshot: one [`RelStats`] per non-empty
/// relation. The cost model treats predicates absent from the snapshot as
/// *cold* and falls back to the greedy boundness order for rules whose
/// bodies it knows nothing about.
#[derive(Clone, Debug, Default)]
pub struct PlanStats {
    per_pred: FxHashMap<Pred, RelStats>,
    total_rows: usize,
}

impl PlanStats {
    /// A snapshot with no statistics at all: every lookup misses, so every
    /// compile falls back to the greedy order.
    pub fn empty() -> PlanStats {
        PlanStats::default()
    }

    /// The snapshot for `p`, if `p` had rows at snapshot time.
    pub fn get(&self, p: Pred) -> Option<&RelStats> {
        self.per_pred.get(&p)
    }

    /// Total rows across all snapshotted relations. Used as the pessimistic
    /// default cardinality for predicates the snapshot knows nothing about
    /// (typically IDB predicates that are empty now but grow during the
    /// run).
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Whether the snapshot carries no statistics (cold start).
    pub fn is_cold(&self) -> bool {
        self.per_pred.is_empty()
    }
}

/// A database: one [`Relation`] per predicate, created on demand.
#[derive(Clone, Default)]
pub struct Database {
    relations: FxHashMap<Pred, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The relation for `p`, creating it (with `arity`) if absent.
    pub fn relation_mut(&mut self, p: Pred, arity: usize) -> &mut Relation {
        let rel = self
            .relations
            .entry(p)
            .or_insert_with(|| Relation::new(arity));
        assert_eq!(rel.arity(), arity, "predicate used with two arities");
        rel
    }

    /// The relation for `p`, if any tuple or declaration created it.
    pub fn relation(&self, p: Pred) -> Option<&Relation> {
        self.relations.get(&p)
    }

    /// Inserts an asserted (base) fact; returns `true` if new.
    pub fn insert(&mut self, p: Pred, t: &[Cst]) -> bool {
        self.relation_mut(p, t.len()).insert(t)
    }

    /// Inserts a rule-derived fact (never reclaims a tombstoned slot,
    /// leaves the asserted bit clear); returns `true` if new.
    pub fn insert_derived(&mut self, p: Pred, t: &[Cst]) -> bool {
        self.relation_mut(p, t.len()).insert_derived(t)
    }

    /// Compacts every relation (physically dropping tombstoned rows and
    /// rebuilding indexes and bloom filters); returns how many relations
    /// changed. Row ids are renumbered, so snapshot writers must persist
    /// in the same pass to keep on-disk and in-memory ids in lock-step.
    pub fn compact(&mut self) -> usize {
        self.relations
            .values_mut()
            .map(|r| usize::from(r.compact()))
            .sum()
    }

    /// Ensures `p`'s relation (if it exists) has the composite index for
    /// `sig`. Called by the evaluator before each round with the signatures
    /// its compiled programs will probe.
    pub fn ensure_composite(&mut self, p: Pred, sig: u64) {
        if let Some(rel) = self.relations.get_mut(&p) {
            rel.ensure_composite(sig);
        }
    }

    /// Membership test; absent predicates are empty.
    pub fn contains(&self, p: Pred, t: &[Cst]) -> bool {
        self.relations.get(&p).is_some_and(|r| r.contains(t))
    }

    /// Total number of live tuples across relations.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::live).sum()
    }

    /// Approximate resident bytes across relations (see
    /// [`Relation::approx_bytes`]); checked against the governor's byte
    /// budget at round boundaries.
    pub fn approx_bytes(&self) -> usize {
        self.relations.values().map(Relation::approx_bytes).sum()
    }

    /// Iterates `(predicate, relation)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pred, &Relation)> {
        self.relations.iter().map(|(&p, r)| (p, r))
    }

    /// Snapshots cardinality statistics for every non-empty relation, for
    /// the compile-time cost model ([`crate::DeltaPlan::planned`]). Empty
    /// relations are omitted so the planner treats them as cold rather than
    /// as genuinely-zero-cost (an IDB relation that is empty *now* usually
    /// is not by round two).
    pub fn plan_stats(&self) -> PlanStats {
        let mut per_pred = FxHashMap::default();
        let mut total_rows = 0;
        for (&p, rel) in self.relations.iter() {
            if !rel.is_empty() {
                total_rows += rel.live();
                per_pred.insert(p, rel.stats());
            }
        }
        PlanStats {
            per_pred,
            total_rows,
        }
    }

    /// Like [`Database::plan_stats`], but each relation's snapshot is a
    /// [`Relation::live_stats`] one: whole-relation statistics plus delta
    /// rows past the low-water mark `mark_of(p)` and the per-column
    /// distinct sketches accumulated since the last live snapshot (which
    /// this call clears). Used by the adaptive evaluator to re-plan at
    /// round boundaries without rescanning anything.
    pub fn plan_stats_live(&mut self, mark_of: impl Fn(Pred) -> usize) -> PlanStats {
        let mut per_pred = FxHashMap::default();
        let mut total_rows = 0;
        for (&p, rel) in self.relations.iter_mut() {
            if !rel.is_empty() {
                total_rows += rel.live();
                per_pred.insert(p, rel.live_stats(mark_of(p)));
            }
        }
        PlanStats {
            per_pred,
            total_rows,
        }
    }

    /// Renders all facts sorted by text, for tests and goldens.
    pub fn dump(&self, interner: &Interner) -> Vec<String> {
        let mut out = Vec::with_capacity(self.fact_count());
        for (p, rel) in self.iter() {
            for row in rel.rows() {
                let args = row
                    .iter()
                    .map(|c| interner.resolve(c.sym()).to_owned())
                    .collect::<Vec<_>>()
                    .join(",");
                out.push(format!("{}({})", interner.resolve(p.sym()), args));
            }
        }
        out.sort_unstable();
        out
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Database({} facts)", self.fact_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csts(i: &mut Interner, names: &[&str]) -> Vec<Cst> {
        names.iter().map(|n| Cst(i.intern(n))).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut i = Interner::new();
        let c = csts(&mut i, &["a", "b"]);
        let mut r = Relation::new(2);
        assert!(r.insert(&c));
        assert!(!r.insert(&c));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&c));
    }

    #[test]
    fn rows_are_pooled_and_addressable() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let mut r = Relation::new(2);
        let id0 = r.insert_row(&[v[0], v[1]]).unwrap();
        let id1 = r.insert_row(&[v[1], v[2]]).unwrap();
        assert!(r.insert_row(&[v[0], v[1]]).is_none());
        assert_eq!(id0, RowId(0));
        assert_eq!(id1, RowId(1));
        assert_eq!(r.row(id1), &[v[1], v[2]]);
        let collected: Vec<&[Cst]> = r.rows().collect();
        assert_eq!(collected, vec![&[v[0], v[1]][..], &[v[1], v[2]][..]]);
    }

    #[test]
    fn arity_zero_rows_dedup() {
        let mut r = Relation::new(0);
        assert!(r.insert(&[]));
        assert!(!r.insert(&[]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
        assert_eq!(r.rows().count(), 1);
        assert_eq!(r.row(RowId(0)), &[] as &[Cst]);
    }

    #[test]
    fn select_filters_by_pattern() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let (a, b, c) = (v[0], v[1], v[2]);
        let mut r = Relation::new(2);
        r.insert(&[a, b]);
        r.insert(&[a, c]);
        r.insert(&[b, c]);
        assert_eq!(r.select(&[Some(a), None]).count(), 2);
        assert_eq!(r.select(&[None, Some(c)]).count(), 2);
        assert_eq!(r.select(&[Some(b), Some(b)]).count(), 0);
        assert_eq!(r.select(&[None, None]).count(), 3);
    }

    #[test]
    fn rows_from_exposes_delta() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b"]);
        let mut r = Relation::new(1);
        r.insert(&[v[0]]);
        let mark = r.len();
        r.insert(&[v[1]]);
        let delta: Vec<&[Cst]> = r.rows_from(mark).collect();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0][0], v[1]);
    }

    #[test]
    fn rows_range_is_a_chunk() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c", "d"]);
        let mut r = Relation::new(1);
        for &c in &v {
            r.insert(&[c]);
        }
        let chunk: Vec<&[Cst]> = r.rows_range(1, 3).collect();
        assert_eq!(chunk, vec![&[v[1]][..], &[v[2]][..]]);
        assert_eq!(r.rows_range(2, 2).count(), 0);
    }

    /// Resolves a probe to confirmed rows (re-checking the key), in id
    /// order — the test-side equivalent of what the compiled executor does.
    fn probe_rows<'a>(r: &'a Relation, sig: u64, key: &[Cst]) -> Vec<&'a [Cst]> {
        let ids: &[u32] = match r.probe(sig, key) {
            Probe::Index(ids) | Probe::Partial(ids) => ids,
            Probe::Scan => return r.rows().collect(),
        };
        ids.iter()
            .map(|&i| r.row(RowId(i)))
            .filter(|row| {
                let mut bits = sig;
                let mut ki = 0;
                let mut ok = true;
                while bits != 0 {
                    let col = bits.trailing_zeros() as usize;
                    ok &= row[col] == key[ki];
                    bits &= bits - 1;
                    ki += 1;
                }
                ok
            })
            .collect()
    }

    #[test]
    fn composite_probe_answers_multi_column_keys() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let (a, b, c) = (v[0], v[1], v[2]);
        let mut r = Relation::new(3);
        r.insert(&[a, b, c]);
        r.insert(&[a, b, a]);
        r.insert(&[a, c, c]);
        // Without the index, a two-column probe is only partially covered.
        assert!(matches!(r.probe(0b011, &[a, b]), Probe::Partial(_)));
        assert_eq!(probe_rows(&r, 0b011, &[a, b]).len(), 2);
        // Build it: the same probe is now fully covered.
        r.ensure_composite(0b011);
        assert!(r.has_composite(0b011));
        assert!(matches!(r.probe(0b011, &[a, b]), Probe::Index(_)));
        assert_eq!(probe_rows(&r, 0b011, &[a, b]).len(), 2);
        assert_eq!(probe_rows(&r, 0b011, &[b, b]).len(), 0);
        // Columns 0 and 2 (non-adjacent signature).
        r.ensure_composite(0b101);
        assert_eq!(probe_rows(&r, 0b101, &[a, c]).len(), 2);
    }

    #[test]
    fn composite_index_is_maintained_on_insert() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let (a, b, c) = (v[0], v[1], v[2]);
        let mut r = Relation::new(2);
        r.insert(&[a, b]);
        r.ensure_composite(0b11);
        r.insert(&[a, c]);
        r.insert(&[a, b]); // duplicate: must not double-index
        assert_eq!(probe_rows(&r, 0b11, &[a, c]).len(), 1);
        assert_eq!(probe_rows(&r, 0b11, &[a, b]).len(), 1);
    }

    #[test]
    fn single_column_probes_use_column_index() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b"]);
        let mut r = Relation::new(2);
        r.insert(&[v[0], v[1]]);
        r.insert(&[v[1], v[1]]);
        // Column signatures with one bit never build anything...
        r.ensure_composite(0b10);
        assert!(r.has_composite(0b10));
        // ...but are still fully covered probes.
        assert!(matches!(r.probe(0b10, &[v[1]]), Probe::Index(_)));
        assert_eq!(probe_rows(&r, 0b10, &[v[1]]).len(), 2);
        assert!(matches!(r.probe(0, &[]), Probe::Scan));
    }

    #[test]
    fn bloom_rejects_absent_keys_without_losing_rows() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c", "d"]);
        let (a, b, c, d) = (v[0], v[1], v[2], v[3]);
        let mut r = Relation::new(2);
        r.insert(&[a, b]);
        r.ensure_composite(0b11);
        r.insert(&[c, d]); // bloom maintained on insert
                           // Present keys are found through the bloom.
        assert_eq!(probe_rows(&r, 0b11, &[a, b]).len(), 1);
        assert_eq!(probe_rows(&r, 0b11, &[c, d]).len(), 1);
        // Absent keys yield zero candidates whether the bloom rejects them
        // or the bucket lookup misses.
        assert_eq!(probe_rows(&r, 0b11, &[a, d]).len(), 0);
        match r.composite_probe(0b11, hash_key(&[a, b])) {
            CompositeProbe::Bucket(ids) => assert_eq!(ids.len(), 1),
            other => panic!("expected bucket, got {other:?}"),
        }
        assert!(matches!(
            r.composite_probe(0b01, hash_key(&[a])),
            CompositeProbe::NotBuilt
        ));
        // Sweep many absent keys: every one must resolve to zero confirmed
        // rows; at least some should be bloom rejections (8192 bits, 2 keys
        // set — collisions are overwhelmingly unlikely for all 16 probes).
        let extra = csts(&mut i, &["e0", "e1", "e2", "e3"]);
        let mut rejects = 0;
        for &x in &extra {
            for &y in &extra {
                assert_eq!(probe_rows(&r, 0b11, &[x, y]).len(), 0);
                if matches!(
                    r.composite_probe(0b11, hash_key(&[x, y])),
                    CompositeProbe::BloomReject
                ) {
                    rejects += 1;
                }
            }
        }
        assert!(rejects > 0, "no bloom rejections across 16 absent keys");
    }

    #[test]
    fn live_stats_report_and_clear_the_delta_sketch() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let (a, b, c) = (v[0], v[1], v[2]);
        let mut r = Relation::new(2);
        r.insert(&[a, b]);
        r.insert(&[a, c]);
        let s = r.live_stats(0);
        assert_eq!(s.rows, 2);
        assert_eq!(s.delta_rows, 2);
        assert_eq!(s.delta_distinct.len(), 2);
        assert_eq!(s.delta_distinct[0], 1); // only `a` in column 0
        assert!(s.delta_distinct[1] >= 1 && s.delta_distinct[1] <= 2);
        // The snapshot cleared the sketch: a new snapshot past the same
        // mark still counts rows but sees no freshly-sketched values.
        let s2 = r.live_stats(2);
        assert_eq!(s2.delta_rows, 0);
        assert_eq!(s2.delta_distinct, vec![0, 0]);
        // Plain stats never carry delta fields.
        let plain = r.stats();
        assert_eq!(plain.delta_rows, 0);
        assert!(plain.delta_distinct.is_empty());
    }

    #[test]
    fn plan_stats_live_uses_marks() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let v = csts(&mut i, &["a", "b", "c"]);
        let mut db = Database::new();
        db.insert(p, &[v[0]]);
        db.insert(p, &[v[1]]);
        db.insert(p, &[v[2]]);
        let live = db.plan_stats_live(|_| 1);
        let s = live.get(p).expect("P snapshotted");
        assert_eq!(s.rows, 3);
        assert_eq!(s.delta_rows, 2);
        assert_eq!(live.total_rows(), 3);
    }

    #[test]
    fn database_creates_relations_on_demand() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let a = Cst(i.intern("a"));
        let mut db = Database::new();
        assert!(db.relation(p).is_none());
        assert!(db.insert(p, &[a]));
        assert!(db.contains(p, &[a]));
        assert_eq!(db.fact_count(), 1);
    }

    #[test]
    #[should_panic(expected = "two arities")]
    fn arity_conflict_panics() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let a = Cst(i.intern("a"));
        let mut db = Database::new();
        db.insert(p, &[a]);
        db.relation_mut(p, 2);
    }

    #[test]
    fn dump_is_sorted_and_readable() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let v = csts(&mut i, &["b", "a"]);
        let mut db = Database::new();
        db.insert(p, &[v[0]]);
        db.insert(q, &[v[1], v[0]]);
        assert_eq!(db.dump(&i), vec!["P(b)".to_string(), "Q(a,b)".to_string()]);
    }

    #[test]
    fn retract_tombstones_without_moving_rows() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let mut r = Relation::new(1);
        let ids: Vec<RowId> = v.iter().map(|&c| r.insert_row(&[c]).unwrap()).collect();
        let gone = r.retract_tuple(&[v[1]]).unwrap();
        assert_eq!(gone, ids[1]);
        // Dense high-water unchanged; live count and membership down.
        assert_eq!(r.len(), 3);
        assert_eq!(r.live(), 2);
        assert_eq!(r.dead(), 1);
        assert!(!r.contains(&[v[1]]));
        assert!(r.is_tombstoned(ids[1]));
        assert_eq!(r.stats().rows, 2);
        // Iteration, selects and dumps skip the tombstone.
        let live: Vec<&[Cst]> = r.rows().collect();
        assert_eq!(live, vec![&[v[0]][..], &[v[2]][..]]);
        assert_eq!(r.select(&[None]).count(), 2);
        assert_eq!(r.select(&[Some(v[1])]).count(), 0);
        // Retracting again finds nothing.
        assert!(r.retract_tuple(&[v[1]]).is_none());
    }

    #[test]
    fn public_insert_reclaims_tombstoned_slot_and_bumps_epoch() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let mut r = Relation::new(1);
        let ids: Vec<RowId> = v.iter().map(|&c| r.insert_row(&[c]).unwrap()).collect();
        let epoch = r.reuse_epoch();
        r.retract_row(ids[1]);
        // Re-asserting the same tuple revives the parked slot: same
        // RowId, no arena growth, and the epoch moves so incremental
        // marks know a row appeared below the high-water line.
        let back = r.insert_row(&[v[1]]).unwrap();
        assert_eq!(back, ids[1]);
        assert_eq!(r.len(), 3);
        assert_eq!(r.live(), 3);
        assert!(r.is_asserted(back));
        assert_eq!(r.reuse_epoch(), epoch + 1);
        // Bucket enumeration order is as if the retraction never
        // happened (sorted re-insertion).
        let all: Vec<&[Cst]> = r.rows().collect();
        assert_eq!(all, vec![&[v[0]][..], &[v[1]][..], &[v[2]][..]]);
    }

    #[test]
    fn derived_insert_never_reclaims() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b"]);
        let mut r = Relation::new(1);
        let id = r.insert_row(&[v[0]]).unwrap();
        r.insert_row(&[v[1]]);
        let epoch = r.reuse_epoch();
        r.retract_row(id);
        // A derived duplicate of a *tombstoned* tuple must append: round
        // deltas stay contiguous and the WAL's `cells_from` contract
        // holds. The parked slot stays parked.
        let fresh = r.insert_derived_row(&[v[0]]).unwrap();
        assert_eq!(fresh, RowId(2));
        assert_eq!(r.reuse_epoch(), epoch);
        assert!(r.is_tombstoned(id));
        assert!(!r.is_asserted(fresh));
        assert_eq!(r.live(), 2);
    }

    #[test]
    fn restore_revives_in_place_without_epoch_bump() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let mut r = Relation::new(2);
        r.insert(&[v[0], v[1]]);
        let id = r.insert_row(&[v[1], v[2]]).unwrap();
        let epoch = r.reuse_epoch();
        r.retract_row(id);
        assert_eq!(r.restore_tuple(&[v[1], v[2]]), Some(id));
        assert_eq!(r.reuse_epoch(), epoch);
        assert_eq!(r.live(), 2);
        assert!(r.contains(&[v[1], v[2]]));
        assert_eq!(r.select(&[Some(v[1]), None]).count(), 1);
        // Restoring something never retracted finds nothing.
        assert!(r.restore_tuple(&[v[0], v[1]]).is_none());
    }

    #[test]
    fn compact_drops_tombstones_and_rebuilds_indexes() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c", "d"]);
        let mut r = Relation::new(2);
        r.insert(&[v[0], v[1]]);
        r.insert(&[v[1], v[2]]);
        r.insert(&[v[2], v[3]]);
        r.ensure_composite(0b11);
        let epoch = r.reuse_epoch();
        r.retract_tuple(&[v[1], v[2]]).unwrap();
        assert!(r.compact());
        assert_eq!(r.len(), 2);
        assert_eq!(r.dead(), 0);
        assert_eq!(r.reuse_epoch(), epoch + 1);
        // Survivors are renumbered densely in their old order.
        assert_eq!(r.row(RowId(0)), &[v[0], v[1]]);
        assert_eq!(r.row(RowId(1)), &[v[2], v[3]]);
        // Rebuilt composite index + bloom answer exactly.
        match r.composite_probe(0b11, hash_sig_cols(&[v[2], v[3]], 0b11)) {
            CompositeProbe::Bucket(b) => assert_eq!(b, &[1]),
            other => panic!("expected bucket, got {other:?}"),
        }
        // Nothing dead: compact is a no-op.
        assert!(!r.compact());
    }

    #[test]
    fn resketch_triggers_past_quarter_tombstones() {
        let mut i = Interner::new();
        let names: Vec<String> = (0..8).map(|k| format!("c{k}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let v = csts(&mut i, &refs);
        let mut r = Relation::new(2);
        // Column 0 skewed onto one value, so max_bucket is large.
        for &c in &v {
            r.insert(&[v[0], c]);
        }
        assert_eq!(r.max_bucket(0), 8);
        r.retract_tuple(&[v[0], v[0]]).unwrap();
        // 1/8 dead: below threshold, the high-water mark stays stale.
        assert!(!r.maybe_resketch());
        assert_eq!(r.max_bucket(0), 8);
        r.retract_tuple(&[v[0], v[1]]).unwrap();
        r.retract_tuple(&[v[0], v[2]]).unwrap();
        // 3/8 dead (> 25%): recompute makes the skew exact again.
        assert!(r.maybe_resketch());
        assert_eq!(r.max_bucket(0), 5);
    }

    #[test]
    fn database_compact_reports_changed_relations() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let v = csts(&mut i, &["a", "b"]);
        let mut db = Database::new();
        db.insert(p, &[v[0]]);
        db.insert(p, &[v[1]]);
        db.insert(q, &[v[0], v[1]]);
        db.relation_mut(p, 1).retract_tuple(&[v[0]]).unwrap();
        assert_eq!(db.compact(), 1);
        assert_eq!(db.fact_count(), 2);
    }

    mod bloom_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Satellite guarantee: a tombstone leaves its bloom bits set,
            /// so a composite pre-probe may waste a bucket walk (false
            /// positive) but can never reject a *live* key — and after
            /// compaction the rebuilt filter still admits every live key.
            #[test]
            fn bloom_preprobes_sound_after_retract(
                rows in proptest::collection::vec((0u8..12, 0u8..12), 1..40),
                kill in proptest::collection::vec(any::<bool>(), 40..41),
            ) {
                let mut i = Interner::new();
                let names: Vec<String> = (0..12).map(|k| format!("c{k}")).collect();
                let refs: Vec<&str> = names.iter().map(String::as_str).collect();
                let v = csts(&mut i, &refs);
                let mut r = Relation::new(2);
                for &(a, b) in &rows {
                    r.insert(&[v[a as usize], v[b as usize]]);
                }
                r.ensure_composite(0b11);
                let mut live: Vec<[Cst; 2]> = Vec::new();
                let mut seen = std::collections::HashSet::new();
                for (k, &(a, b)) in rows.iter().enumerate() {
                    let t = [v[a as usize], v[b as usize]];
                    if !seen.insert((a, b)) {
                        continue;
                    }
                    if kill[k] {
                        prop_assert!(r.retract_tuple(&t).is_some());
                    } else {
                        live.push(t);
                    }
                }
                let check = |r: &Relation| -> Result<(), TestCaseError> {
                    for t in &live {
                        let kh = hash_sig_cols(t, 0b11);
                        match r.composite_probe(0b11, kh) {
                            CompositeProbe::Bucket(bucket) => {
                                prop_assert!(
                                    bucket.iter().any(|&id| r.row(RowId(id)) == &t[..]),
                                    "live key missing from bucket"
                                );
                            }
                            CompositeProbe::BloomReject => {
                                return Err(TestCaseError::fail("false bloom reject on live key"));
                            }
                            CompositeProbe::NotBuilt => {
                                return Err(TestCaseError::fail("composite index vanished"));
                            }
                        }
                    }
                    Ok(())
                };
                check(&r)?;
                r.compact();
                check(&r)?;
            }
        }
    }
}
