//! Relations and databases of constant tuples.

use fundb_term::{Cst, FxHashMap, FxHashSet, Interner, Pred};
use std::fmt;

/// A tuple of constants. Boxed slice: tuples are immutable once inserted.
pub type Tuple = Box<[Cst]>;

/// Shared empty bucket for index misses (a bound value that never occurs).
static EMPTY_BUCKET: Vec<u32> = Vec::new();

/// A set-semantics relation of fixed arity.
///
/// Tuples are stored in insertion order (`rows`, so evaluation is
/// deterministic and semi-naive deltas are contiguous suffixes), in a hash
/// set for O(1) duplicate elimination, and in per-column hash indexes so
/// selections with bound columns avoid full scans.
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    rows: Vec<Tuple>,
    set: FxHashSet<Tuple>,
    /// `index[col][value]` = indices of rows with `row[col] == value`.
    index: Vec<FxHashMap<Cst, Vec<u32>>>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            rows: Vec::new(),
            set: FxHashSet::default(),
            index: (0..arity).map(|_| FxHashMap::default()).collect(),
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a tuple; returns `true` if it was new.
    pub fn insert(&mut self, t: Tuple) -> bool {
        assert_eq!(t.len(), self.arity, "arity mismatch on insert");
        if self.set.contains(&t) {
            return false;
        }
        self.set.insert(t.clone());
        let row_idx = u32::try_from(self.rows.len()).expect("relation overflow");
        for (col, &v) in t.iter().enumerate() {
            self.index[col].entry(v).or_default().push(row_idx);
        }
        self.rows.push(t);
        true
    }

    /// Membership test.
    pub fn contains(&self, t: &[Cst]) -> bool {
        self.set.contains(t)
    }

    /// All tuples in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Tuples inserted at or after index `from` (the semi-naive delta).
    pub fn rows_from(&self, from: usize) -> &[Tuple] {
        &self.rows[from..]
    }

    /// Iterates tuples matching a pattern (`None` = wildcard). Uses the
    /// per-column index of the most selective bound column when there is
    /// one, falling back to a scan otherwise.
    pub fn select<'a: 'p, 'p>(
        &'a self,
        pattern: &'p [Option<Cst>],
    ) -> Box<dyn Iterator<Item = &'a Tuple> + 'p> {
        debug_assert_eq!(pattern.len(), self.arity);
        let matches = move |row: &&Tuple| {
            row.iter()
                .zip(pattern)
                .all(|(v, p)| p.is_none_or(|c| c == *v))
        };
        // Pick the bound column with the smallest bucket.
        let best: Option<&Vec<u32>> = pattern
            .iter()
            .enumerate()
            .filter_map(|(col, p)| p.map(|c| self.index[col].get(&c)))
            .map(|bucket| bucket.map_or(&EMPTY_BUCKET, |b| b))
            .min_by_key(|b| b.len());
        match best {
            Some(bucket) => Box::new(
                bucket
                    .iter()
                    .map(move |&i| &self.rows[i as usize])
                    .filter(matches),
            ),
            None => Box::new(self.rows.iter().filter(matches)),
        }
    }
}

/// A database: one [`Relation`] per predicate, created on demand.
#[derive(Clone, Default)]
pub struct Database {
    relations: FxHashMap<Pred, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The relation for `p`, creating it (with `arity`) if absent.
    pub fn relation_mut(&mut self, p: Pred, arity: usize) -> &mut Relation {
        let rel = self
            .relations
            .entry(p)
            .or_insert_with(|| Relation::new(arity));
        assert_eq!(rel.arity(), arity, "predicate used with two arities");
        rel
    }

    /// The relation for `p`, if any tuple or declaration created it.
    pub fn relation(&self, p: Pred) -> Option<&Relation> {
        self.relations.get(&p)
    }

    /// Inserts a fact; returns `true` if new.
    pub fn insert(&mut self, p: Pred, t: Tuple) -> bool {
        let arity = t.len();
        self.relation_mut(p, arity).insert(t)
    }

    /// Membership test; absent predicates are empty.
    pub fn contains(&self, p: Pred, t: &[Cst]) -> bool {
        self.relations.get(&p).is_some_and(|r| r.contains(t))
    }

    /// Total number of tuples across relations.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Iterates `(predicate, relation)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pred, &Relation)> {
        self.relations.iter().map(|(&p, r)| (p, r))
    }

    /// Renders all facts sorted by text, for tests and goldens.
    pub fn dump(&self, interner: &Interner) -> Vec<String> {
        let mut out = Vec::with_capacity(self.fact_count());
        for (p, rel) in self.iter() {
            for row in rel.rows() {
                let args = row
                    .iter()
                    .map(|c| interner.resolve(c.sym()).to_owned())
                    .collect::<Vec<_>>()
                    .join(",");
                out.push(format!("{}({})", interner.resolve(p.sym()), args));
            }
        }
        out.sort_unstable();
        out
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Database({} facts)", self.fact_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csts(i: &mut Interner, names: &[&str]) -> Vec<Cst> {
        names.iter().map(|n| Cst(i.intern(n))).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut i = Interner::new();
        let c = csts(&mut i, &["a", "b"]);
        let mut r = Relation::new(2);
        assert!(r.insert(c.clone().into_boxed_slice()));
        assert!(!r.insert(c.clone().into_boxed_slice()));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&c));
    }

    #[test]
    fn select_filters_by_pattern() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let (a, b, c) = (v[0], v[1], v[2]);
        let mut r = Relation::new(2);
        r.insert(vec![a, b].into_boxed_slice());
        r.insert(vec![a, c].into_boxed_slice());
        r.insert(vec![b, c].into_boxed_slice());
        assert_eq!(r.select(&[Some(a), None]).count(), 2);
        assert_eq!(r.select(&[None, Some(c)]).count(), 2);
        assert_eq!(r.select(&[Some(b), Some(b)]).count(), 0);
        assert_eq!(r.select(&[None, None]).count(), 3);
    }

    #[test]
    fn rows_from_exposes_delta() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b"]);
        let mut r = Relation::new(1);
        r.insert(vec![v[0]].into_boxed_slice());
        let mark = r.len();
        r.insert(vec![v[1]].into_boxed_slice());
        assert_eq!(r.rows_from(mark).len(), 1);
        assert_eq!(r.rows_from(mark)[0][0], v[1]);
    }

    #[test]
    fn database_creates_relations_on_demand() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let a = Cst(i.intern("a"));
        let mut db = Database::new();
        assert!(db.relation(p).is_none());
        assert!(db.insert(p, vec![a].into_boxed_slice()));
        assert!(db.contains(p, &[a]));
        assert_eq!(db.fact_count(), 1);
    }

    #[test]
    #[should_panic(expected = "two arities")]
    fn arity_conflict_panics() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let a = Cst(i.intern("a"));
        let mut db = Database::new();
        db.insert(p, vec![a].into_boxed_slice());
        db.relation_mut(p, 2);
    }

    #[test]
    fn dump_is_sorted_and_readable() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let v = csts(&mut i, &["b", "a"]);
        let mut db = Database::new();
        db.insert(p, vec![v[0]].into_boxed_slice());
        db.insert(q, vec![v[1], v[0]].into_boxed_slice());
        assert_eq!(db.dump(&i), vec!["P(b)".to_string(), "Q(a,b)".to_string()]);
    }
}
