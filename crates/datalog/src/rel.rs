//! Relations and databases of constant tuples over a pooled row-store.
//!
//! Tuples live in a [`RowPool`]: a flat `Vec<Cst>` arena where row `i` of an
//! arity-`a` relation occupies `data[i*a .. (i+1)*a]`. Each tuple's constants
//! are stored exactly once; duplicate elimination goes through a
//! hash-of-slice table mapping a row hash to the [`RowId`]s carrying it (the
//! candidate rows are compared against the arena, so no second owned copy of
//! the tuple ever exists), and the per-column indexes keep pushing `u32`
//! row ids.

use fundb_term::{Cst, FxHashMap, FxHasher, Interner, Pred};
use std::fmt;
use std::hash::Hasher;

/// An owned tuple of constants, used at API boundaries that must carry rows
/// outside a relation (provenance records, staged insertions). Inside a
/// [`Relation`] rows are pooled and only ever borrowed as `&[Cst]`.
pub type Tuple = Box<[Cst]>;

/// Handle to one row of a [`RowPool`] (dense insertion index).
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RowId(pub u32);

impl RowId {
    /// The dense index of this row (0-based insertion order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Flat arena of fixed-arity rows: row `i` is `data[i*arity .. (i+1)*arity]`.
#[derive(Clone, Debug, Default)]
pub struct RowPool {
    arity: usize,
    data: Vec<Cst>,
}

impl RowPool {
    /// An empty pool of the given arity.
    pub fn new(arity: usize) -> Self {
        RowPool {
            arity,
            data: Vec::new(),
        }
    }

    /// Number of rows in the pool. Arity-0 rows occupy no arena space, so
    /// for them the count lives in the owning relation and this reports 0.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len().checked_div(self.arity).unwrap_or(0)
    }

    /// Whether the pool holds no rows.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes held by the constant arena (the dominant row-store cost; the
    /// governor's byte budget is built on this).
    #[inline]
    pub fn approx_bytes(&self) -> usize {
        self.data.len() * std::mem::size_of::<Cst>()
    }

    /// The row at dense index `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[Cst] {
        let a = self.arity;
        &self.data[i * a..i * a + a]
    }

    /// The contiguous cell slice of every row at or after index `from`
    /// (empty for arity-0 pools, whose rows occupy no arena space).
    #[inline]
    pub fn cells_from(&self, from: usize) -> &[Cst] {
        &self.data[(from * self.arity).min(self.data.len())..]
    }

    /// Appends a row, returning its handle. The caller is responsible for
    /// deduplication.
    fn push(&mut self, t: &[Cst], next_id: usize) -> RowId {
        debug_assert_eq!(t.len(), self.arity);
        self.data.extend_from_slice(t);
        RowId(u32::try_from(next_id).expect("relation overflow"))
    }
}

/// Fx hash of a row's constants, used to key the dedup table.
#[inline]
pub(crate) fn hash_row(t: &[Cst]) -> u64 {
    let mut h = FxHasher::default();
    for c in t {
        h.write_usize(c.index());
    }
    h.finish()
}

/// Fx hash of the columns of `row` selected by `sig` (ascending column
/// order), used to key a composite index.
#[inline]
fn hash_sig_cols(row: &[Cst], sig: u64) -> u64 {
    let mut h = FxHasher::default();
    let mut bits = sig;
    while bits != 0 {
        let col = bits.trailing_zeros() as usize;
        h.write_usize(row[col].index());
        bits &= bits - 1;
    }
    h.finish()
}

/// Fx hash of an already-extracted composite key (the bound values in
/// ascending column order). Must agree with [`hash_sig_cols`].
#[inline]
fn hash_key(key: &[Cst]) -> u64 {
    let mut h = FxHasher::default();
    for c in key {
        h.write_usize(c.index());
    }
    h.finish()
}

/// Bits in a per-signature bloom filter. Small enough to build eagerly for
/// every composite index (1 KiB), large enough that the key populations the
/// evaluator sees (thousands of distinct composite keys at most) keep the
/// false-positive rate low; a false positive only costs the hash-map lookup
/// the filter would have skipped, never an answer.
const BLOOM_BITS: u64 = 8192;

/// `u64` words backing one bloom filter.
const BLOOM_WORDS: usize = (BLOOM_BITS / 64) as usize;

/// A fixed-size two-probe bloom filter over 64-bit composite-key hashes.
/// Membership is approximate in one direction only: `may_contain` returning
/// `false` proves the key hash was never inserted, so a pre-probe rejection
/// can skip the hash-bucket walk without ever losing a candidate row.
#[derive(Clone)]
struct Bloom {
    words: Box<[u64; BLOOM_WORDS]>,
}

impl Bloom {
    fn new() -> Bloom {
        Bloom {
            words: Box::new([0u64; BLOOM_WORDS]),
        }
    }

    /// The two bit positions probed for a key hash: the low bits and the
    /// high bits of the (already well-mixed) Fx key hash.
    #[inline]
    fn bits(h: u64) -> (u64, u64) {
        (h & (BLOOM_BITS - 1), (h >> 32) & (BLOOM_BITS - 1))
    }

    #[inline]
    fn insert(&mut self, h: u64) {
        let (a, b) = Bloom::bits(h);
        self.words[(a / 64) as usize] |= 1 << (a % 64);
        self.words[(b / 64) as usize] |= 1 << (b % 64);
    }

    #[inline]
    fn may_contain(&self, h: u64) -> bool {
        let (a, b) = Bloom::bits(h);
        self.words[(a / 64) as usize] & (1 << (a % 64)) != 0
            && self.words[(b / 64) as usize] & (1 << (b % 64)) != 0
    }
}

impl fmt::Debug for Bloom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let set: u32 = self.words.iter().map(|w| w.count_ones()).sum();
        write!(f, "Bloom({set}/{BLOOM_BITS} bits)")
    }
}

/// A set-semantics relation of fixed arity.
///
/// Rows are stored once, in insertion order, in a [`RowPool`] (so evaluation
/// is deterministic and semi-naive deltas are contiguous suffixes of the
/// arena). A hash-of-slice table dedups inserts without materializing a
/// second copy, and per-column hash indexes let selections with bound
/// columns avoid full scans.
#[derive(Clone, Debug)]
pub struct Relation {
    pool: RowPool,
    len: usize,
    /// `dedup[hash_row(t)]` = ids of rows hashing to that value; candidates
    /// are confirmed by comparing slices in the pool.
    dedup: FxHashMap<u64, Vec<u32>>,
    /// `index[col][value]` = ids of rows with `row[col] == value`.
    index: Vec<FxHashMap<Cst, Vec<u32>>>,
    /// On-demand composite indexes, keyed by a column-signature bitmask
    /// (bit `i` set = column `i` participates in the key):
    /// `composite[sig][hash of the sig columns]` = ids of matching rows.
    /// Built lazily by [`Relation::ensure_composite`], then maintained
    /// incrementally on insert. Buckets are hash-of-key, so probes must
    /// still confirm the candidate rows (exactly like `dedup`).
    composite: FxHashMap<u64, FxHashMap<u64, Vec<u32>>>,
    /// One bloom filter per built composite index, over the same key
    /// hashes. Consulted before the bucket lookup: a rejection proves no
    /// row carries the key, so guaranteed-miss probes cost two bit tests.
    /// Invariant: `blooms` has exactly the keys of `composite`.
    blooms: FxHashMap<u64, Bloom>,
    /// `max_bucket[col]` = size of the largest bucket in `index[col]`,
    /// maintained on insert. Together with `index[col].len()` (the distinct
    /// value count) this is the per-column statistic the compile-time cost
    /// model in `program.rs` consumes: `rows / distinct` is the uniform
    /// selectivity estimate and `max_bucket` its worst-case (skew) clamp.
    max_bucket: Vec<usize>,
    /// Per-column 64-bit hash sketches of the values inserted since the
    /// last [`Relation::live_stats`] snapshot: bit `hash(v) % 64` is set
    /// for every inserted value `v`, so the popcount is a (saturating at
    /// 64) distinct-count estimate for the recent delta. Maintained on
    /// insert, taken-and-cleared by the live snapshot — no rescan ever.
    delta_sketch: Vec<u64>,
}

impl Relation {
    /// Creates an empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            pool: RowPool::new(arity),
            len: 0,
            dedup: FxHashMap::default(),
            index: (0..arity).map(|_| FxHashMap::default()).collect(),
            composite: FxHashMap::default(),
            blooms: FxHashMap::default(),
            max_bucket: vec![0; arity],
            delta_sketch: vec![0; arity],
        }
    }

    /// The arity of the relation.
    pub fn arity(&self) -> usize {
        self.pool.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of distinct values in column `col` (the size of its
    /// per-column index — maintained for free on every insert).
    pub fn distinct(&self, col: usize) -> usize {
        self.index[col].len()
    }

    /// Size of the largest per-value bucket in column `col`'s index: the
    /// worst-case number of rows a single-column probe on `col` can return.
    /// Maintained incrementally on insert.
    pub fn max_bucket(&self, col: usize) -> usize {
        self.max_bucket[col]
    }

    /// A point-in-time cardinality snapshot of this relation for the
    /// compile-time cost model. Delta statistics are zeroed: plain
    /// snapshots describe the whole relation, not a recent increment (see
    /// [`Relation::live_stats`] for the adaptive-execution variant).
    pub fn stats(&self) -> RelStats {
        RelStats {
            rows: self.len,
            distinct: (0..self.arity()).map(|c| self.distinct(c)).collect(),
            max_bucket: self.max_bucket.clone(),
            delta_rows: 0,
            delta_distinct: Vec::new(),
        }
    }

    /// A live snapshot for mid-run re-planning: whole-relation statistics
    /// plus the delta since the caller's low-water `mark` (`delta_rows`) and
    /// the per-column distinct sketch popcounts accumulated since the last
    /// live snapshot. Taking the snapshot clears the sketches, so the next
    /// snapshot describes the next increment; everything here is maintained
    /// on insert — no rescan.
    pub fn live_stats(&mut self, mark: usize) -> RelStats {
        let delta_distinct = self
            .delta_sketch
            .iter_mut()
            .map(|w| {
                let n = w.count_ones() as usize;
                *w = 0;
                n
            })
            .collect();
        RelStats {
            rows: self.len,
            distinct: (0..self.arity()).map(|c| self.distinct(c)).collect(),
            max_bucket: self.max_bucket.clone(),
            delta_rows: self.len.saturating_sub(mark),
            delta_distinct,
        }
    }

    /// Approximate resident bytes: the arena plus one `u32` posting per row
    /// in the dedup table, each per-column index, and each built composite
    /// index. Hash-map headers and bucket slack are deliberately ignored —
    /// the byte budget needs a monotone, cheap estimate, not an allocator
    /// audit.
    pub fn approx_bytes(&self) -> usize {
        let postings = 1 + self.arity() + self.composite.len();
        self.pool.approx_bytes() + self.len * postings * std::mem::size_of::<u32>()
    }

    /// Inserts a tuple; returns its handle if it was new.
    pub fn insert_row(&mut self, t: &[Cst]) -> Option<RowId> {
        assert_eq!(t.len(), self.arity(), "arity mismatch on insert");
        let h = hash_row(t);
        let bucket = self.dedup.entry(h).or_default();
        if bucket.iter().any(|&i| {
            let a = self.pool.arity;
            let i = i as usize;
            &self.pool.data[i * a..i * a + a] == t
        }) {
            return None;
        }
        let id = self.pool.push(t, self.len);
        bucket.push(id.0);
        self.len += 1;
        for (col, &v) in t.iter().enumerate() {
            let bucket = self.index[col].entry(v).or_default();
            bucket.push(id.0);
            if bucket.len() > self.max_bucket[col] {
                self.max_bucket[col] = bucket.len();
            }
            let mut sh = FxHasher::default();
            sh.write_usize(v.index());
            self.delta_sketch[col] |= 1 << (sh.finish() & 63);
        }
        for (&sig, map) in &mut self.composite {
            let kh = hash_sig_cols(t, sig);
            map.entry(kh).or_default().push(id.0);
            if let Some(bloom) = self.blooms.get_mut(&sig) {
                bloom.insert(kh);
            }
        }
        Some(id)
    }

    /// Inserts a tuple; returns `true` if it was new.
    pub fn insert(&mut self, t: &[Cst]) -> bool {
        self.insert_row(t).is_some()
    }

    /// Membership test.
    pub fn contains(&self, t: &[Cst]) -> bool {
        if t.len() != self.arity() {
            return false;
        }
        self.dedup
            .get(&hash_row(t))
            .is_some_and(|bucket| bucket.iter().any(|&i| self.row(RowId(i)) == t))
    }

    /// The row carried by a handle.
    #[inline]
    pub fn row(&self, id: RowId) -> &[Cst] {
        debug_assert!(id.index() < self.len);
        self.pool.row(id.index())
    }

    /// All tuples in insertion order.
    pub fn rows(&self) -> Rows<'_> {
        self.rows_range(0, self.len)
    }

    /// Tuples inserted at or after index `from` (the semi-naive delta).
    pub fn rows_from(&self, from: usize) -> Rows<'_> {
        self.rows_range(from, self.len)
    }

    /// The flat cell slice of every tuple at or after index `from` — rows
    /// are contiguous in the arena, `arity` cells each, in insertion
    /// order. The durable-storage sink bulk-copies a round's new rows from
    /// here instead of re-walking them tuple by tuple. Empty for arity-0
    /// relations (their rows occupy no arena space; use
    /// [`Relation::len`]).
    #[inline]
    pub fn cells_from(&self, from: usize) -> &[Cst] {
        self.pool.cells_from(from)
    }

    /// Tuples with dense indexes in `from..to` (a delta chunk).
    pub fn rows_range(&self, from: usize, to: usize) -> Rows<'_> {
        debug_assert!(from <= to && to <= self.len);
        Rows {
            pool: &self.pool,
            next: from,
            end: to,
        }
    }

    /// Iterates tuples matching a pattern (`None` = wildcard). Uses the
    /// per-column index of the most selective bound column when there is
    /// one, falling back to a scan otherwise.
    pub fn select<'a, 'p>(&'a self, pattern: &'p [Option<Cst>]) -> Select<'a, 'p> {
        debug_assert_eq!(pattern.len(), self.arity());
        // Pick the bound column with the smallest bucket.
        let best: Option<&[u32]> = pattern
            .iter()
            .enumerate()
            .filter_map(|(col, p)| p.map(|c| self.index[col].get(&c)))
            .map(|bucket| bucket.map_or(&[][..], Vec::as_slice))
            .min_by_key(|b| b.len());
        match best {
            Some(bucket) => Select::Indexed {
                rel: self,
                bucket: bucket.iter(),
                pattern,
            },
            None => Select::Scan {
                rows: self.rows(),
                pattern,
            },
        }
    }

    /// Row ids whose column `col` holds `v` (the always-present per-column
    /// index; an absent value is an empty bucket).
    #[inline]
    pub(crate) fn column_bucket(&self, col: usize, v: Cst) -> &[u32] {
        self.index[col].get(&v).map_or(&[], Vec::as_slice)
    }

    /// Probes the composite index for `sig` at `key_hash`, consulting the
    /// signature's bloom filter before the bucket lookup. A built index
    /// with no such key yields an empty bucket (or a bloom rejection, which
    /// the caller can count separately — both mean zero candidates).
    #[inline]
    pub(crate) fn composite_probe(&self, sig: u64, key_hash: u64) -> CompositeProbe<'_> {
        let Some(map) = self.composite.get(&sig) else {
            return CompositeProbe::NotBuilt;
        };
        if let Some(bloom) = self.blooms.get(&sig) {
            if !bloom.may_contain(key_hash) {
                return CompositeProbe::BloomReject;
            }
        }
        CompositeProbe::Bucket(map.get(&key_hash).map_or(&[][..], Vec::as_slice))
    }

    /// Builds the composite index for `sig` if it does not exist yet.
    /// Single-column signatures are served by the always-present per-column
    /// indexes, so nothing is built for them. Subsequent inserts maintain
    /// the index incrementally.
    pub fn ensure_composite(&mut self, sig: u64) {
        if sig.count_ones() <= 1 || self.composite.contains_key(&sig) {
            return;
        }
        let mut map: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut bloom = Bloom::new();
        for i in 0..self.len {
            let row = self.pool.row(i);
            let kh = hash_sig_cols(row, sig);
            map.entry(kh).or_default().push(i as u32);
            bloom.insert(kh);
        }
        self.composite.insert(sig, map);
        self.blooms.insert(sig, bloom);
    }

    /// Whether the composite index for `sig` has been built.
    pub fn has_composite(&self, sig: u64) -> bool {
        sig.count_ones() <= 1 || self.composite.contains_key(&sig)
    }

    /// Answers a bound-column probe: `sig` names the bound columns and
    /// `key` holds their values in ascending column order. Returns the
    /// candidate row ids and whether the index fully covered the bound
    /// columns; candidates must still be confirmed against the key (hash
    /// buckets can collide, and a partial cover filters only one column).
    pub fn probe(&self, sig: u64, key: &[Cst]) -> Probe<'_> {
        debug_assert_eq!(sig.count_ones() as usize, key.len());
        if sig == 0 {
            return Probe::Scan;
        }
        if sig.count_ones() == 1 {
            let col = sig.trailing_zeros() as usize;
            let bucket = self.index[col].get(&key[0]).map_or(&[][..], Vec::as_slice);
            return Probe::Index(bucket);
        }
        if let Some(map) = self.composite.get(&sig) {
            let kh = hash_key(key);
            if let Some(bloom) = self.blooms.get(&sig) {
                if !bloom.may_contain(kh) {
                    // Guaranteed miss: the key hash was never inserted.
                    return Probe::Index(&[]);
                }
            }
            let bucket = map.get(&kh).map_or(&[][..], Vec::as_slice);
            return Probe::Index(bucket);
        }
        // No composite index (immutable caller): fall back to the smallest
        // single-column bucket among the bound columns.
        let mut best: &[u32] = &[];
        let mut best_len = usize::MAX;
        let mut bits = sig;
        let mut ki = 0;
        while bits != 0 {
            let col = bits.trailing_zeros() as usize;
            let bucket = self.index[col].get(&key[ki]).map_or(&[][..], Vec::as_slice);
            if bucket.len() < best_len {
                best = bucket;
                best_len = bucket.len();
            }
            bits &= bits - 1;
            ki += 1;
        }
        Probe::Partial(best)
    }
}

/// Result of [`Relation::composite_probe`]: like the composite arm of
/// [`Relation::probe`], but distinguishes bloom rejections (so the compiled
/// executor can count `bloom_skips`) and never falls back to partial
/// single-column buckets (the executor owns that policy).
#[derive(Clone, Debug)]
pub(crate) enum CompositeProbe<'a> {
    /// The composite index for this signature was never built.
    NotBuilt,
    /// The signature's bloom filter proves no row carries this key hash:
    /// zero candidates, without touching the bucket map.
    BloomReject,
    /// Candidate row ids from the hash bucket (possibly empty); they still
    /// need a confirm pass against the actual key.
    Bucket(&'a [u32]),
}

/// Result of [`Relation::probe`]: candidate row ids for a bound-column
/// selection, tagged by how much of the key the index covered.
#[derive(Clone, Debug)]
pub enum Probe<'a> {
    /// All bound columns are covered (per-column index for one bound
    /// column, composite index otherwise); candidates still need a confirm
    /// pass because composite buckets are keyed by hash.
    Index(&'a [u32]),
    /// Only the most selective single bound column filtered the candidates;
    /// the probe must re-check every bound column.
    Partial(&'a [u32]),
    /// No bound columns: the caller scans the relation.
    Scan,
}

/// Iterator over a contiguous range of a relation's rows.
#[derive(Clone, Debug)]
pub struct Rows<'a> {
    pool: &'a RowPool,
    next: usize,
    end: usize,
}

impl<'a> Iterator for Rows<'a> {
    type Item = &'a [Cst];

    #[inline]
    fn next(&mut self) -> Option<&'a [Cst]> {
        if self.next == self.end {
            return None;
        }
        let row = self.pool.row(self.next);
        self.next += 1;
        Some(row)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.end - self.next;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Rows<'_> {}

fn pattern_matches(row: &[Cst], pattern: &[Option<Cst>]) -> bool {
    row.iter()
        .zip(pattern)
        .all(|(v, p)| p.is_none_or(|c| c == *v))
}

/// Iterator returned by [`Relation::select`]: either walks an index bucket
/// or scans the whole pool, filtering by the pattern either way.
pub enum Select<'a, 'p> {
    /// Walking the bucket of the most selective bound column.
    Indexed {
        /// The relation being selected from.
        rel: &'a Relation,
        /// Remaining row ids in the chosen bucket.
        bucket: std::slice::Iter<'a, u32>,
        /// The selection pattern (`None` = wildcard).
        pattern: &'p [Option<Cst>],
    },
    /// No bound column: full scan.
    Scan {
        /// Remaining rows.
        rows: Rows<'a>,
        /// The selection pattern (`None` = wildcard).
        pattern: &'p [Option<Cst>],
    },
}

impl<'a> Iterator for Select<'a, '_> {
    type Item = &'a [Cst];

    fn next(&mut self) -> Option<&'a [Cst]> {
        match self {
            Select::Indexed {
                rel,
                bucket,
                pattern,
            } => bucket
                .by_ref()
                .map(|&i| rel.row(RowId(i)))
                .find(|row| pattern_matches(row, pattern)),
            Select::Scan { rows, pattern } => {
                rows.by_ref().find(|row| pattern_matches(row, pattern))
            }
        }
    }
}

/// A point-in-time cardinality snapshot of one relation, consumed by the
/// compile-time join cost model in `program.rs`.
///
/// All three statistics are maintained for free by [`Relation::insert_row`]:
/// `rows` is the arena length, `distinct[col]` is the size of the per-column
/// index map, and `max_bucket[col]` is the largest bucket that index has ever
/// held. A snapshot never mutates — plans compiled from it stay fixed for a
/// whole evaluation, which is what keeps parallel runs byte-deterministic.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RelStats {
    /// Number of tuples at snapshot time.
    pub rows: usize,
    /// Distinct values per column at snapshot time.
    pub distinct: Vec<usize>,
    /// Largest single-value index bucket per column at snapshot time: the
    /// worst-case fan-out of a one-column probe (skew clamp).
    pub max_bucket: Vec<usize>,
    /// Rows inserted since the caller's low-water mark. Zero in plain
    /// [`Relation::stats`] snapshots; populated by [`Relation::live_stats`]
    /// for mid-run re-planning.
    pub delta_rows: usize,
    /// Per-column distinct-count estimates (popcount of a 64-bit hash
    /// sketch, saturating at 64) for the values inserted since the last
    /// live snapshot. Empty in plain [`Relation::stats`] snapshots.
    pub delta_distinct: Vec<usize>,
}

/// A database-wide statistics snapshot: one [`RelStats`] per non-empty
/// relation. The cost model treats predicates absent from the snapshot as
/// *cold* and falls back to the greedy boundness order for rules whose
/// bodies it knows nothing about.
#[derive(Clone, Debug, Default)]
pub struct PlanStats {
    per_pred: FxHashMap<Pred, RelStats>,
    total_rows: usize,
}

impl PlanStats {
    /// A snapshot with no statistics at all: every lookup misses, so every
    /// compile falls back to the greedy order.
    pub fn empty() -> PlanStats {
        PlanStats::default()
    }

    /// The snapshot for `p`, if `p` had rows at snapshot time.
    pub fn get(&self, p: Pred) -> Option<&RelStats> {
        self.per_pred.get(&p)
    }

    /// Total rows across all snapshotted relations. Used as the pessimistic
    /// default cardinality for predicates the snapshot knows nothing about
    /// (typically IDB predicates that are empty now but grow during the
    /// run).
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// Whether the snapshot carries no statistics (cold start).
    pub fn is_cold(&self) -> bool {
        self.per_pred.is_empty()
    }
}

/// A database: one [`Relation`] per predicate, created on demand.
#[derive(Clone, Default)]
pub struct Database {
    relations: FxHashMap<Pred, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// The relation for `p`, creating it (with `arity`) if absent.
    pub fn relation_mut(&mut self, p: Pred, arity: usize) -> &mut Relation {
        let rel = self
            .relations
            .entry(p)
            .or_insert_with(|| Relation::new(arity));
        assert_eq!(rel.arity(), arity, "predicate used with two arities");
        rel
    }

    /// The relation for `p`, if any tuple or declaration created it.
    pub fn relation(&self, p: Pred) -> Option<&Relation> {
        self.relations.get(&p)
    }

    /// Inserts a fact; returns `true` if new.
    pub fn insert(&mut self, p: Pred, t: &[Cst]) -> bool {
        self.relation_mut(p, t.len()).insert(t)
    }

    /// Ensures `p`'s relation (if it exists) has the composite index for
    /// `sig`. Called by the evaluator before each round with the signatures
    /// its compiled programs will probe.
    pub fn ensure_composite(&mut self, p: Pred, sig: u64) {
        if let Some(rel) = self.relations.get_mut(&p) {
            rel.ensure_composite(sig);
        }
    }

    /// Membership test; absent predicates are empty.
    pub fn contains(&self, p: Pred, t: &[Cst]) -> bool {
        self.relations.get(&p).is_some_and(|r| r.contains(t))
    }

    /// Total number of tuples across relations.
    pub fn fact_count(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Approximate resident bytes across relations (see
    /// [`Relation::approx_bytes`]); checked against the governor's byte
    /// budget at round boundaries.
    pub fn approx_bytes(&self) -> usize {
        self.relations.values().map(Relation::approx_bytes).sum()
    }

    /// Iterates `(predicate, relation)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Pred, &Relation)> {
        self.relations.iter().map(|(&p, r)| (p, r))
    }

    /// Snapshots cardinality statistics for every non-empty relation, for
    /// the compile-time cost model ([`crate::DeltaPlan::planned`]). Empty
    /// relations are omitted so the planner treats them as cold rather than
    /// as genuinely-zero-cost (an IDB relation that is empty *now* usually
    /// is not by round two).
    pub fn plan_stats(&self) -> PlanStats {
        let mut per_pred = FxHashMap::default();
        let mut total_rows = 0;
        for (&p, rel) in self.relations.iter() {
            if !rel.is_empty() {
                total_rows += rel.len();
                per_pred.insert(p, rel.stats());
            }
        }
        PlanStats {
            per_pred,
            total_rows,
        }
    }

    /// Like [`Database::plan_stats`], but each relation's snapshot is a
    /// [`Relation::live_stats`] one: whole-relation statistics plus delta
    /// rows past the low-water mark `mark_of(p)` and the per-column
    /// distinct sketches accumulated since the last live snapshot (which
    /// this call clears). Used by the adaptive evaluator to re-plan at
    /// round boundaries without rescanning anything.
    pub fn plan_stats_live(&mut self, mark_of: impl Fn(Pred) -> usize) -> PlanStats {
        let mut per_pred = FxHashMap::default();
        let mut total_rows = 0;
        for (&p, rel) in self.relations.iter_mut() {
            if !rel.is_empty() {
                total_rows += rel.len();
                per_pred.insert(p, rel.live_stats(mark_of(p)));
            }
        }
        PlanStats {
            per_pred,
            total_rows,
        }
    }

    /// Renders all facts sorted by text, for tests and goldens.
    pub fn dump(&self, interner: &Interner) -> Vec<String> {
        let mut out = Vec::with_capacity(self.fact_count());
        for (p, rel) in self.iter() {
            for row in rel.rows() {
                let args = row
                    .iter()
                    .map(|c| interner.resolve(c.sym()).to_owned())
                    .collect::<Vec<_>>()
                    .join(",");
                out.push(format!("{}({})", interner.resolve(p.sym()), args));
            }
        }
        out.sort_unstable();
        out
    }
}

impl fmt::Debug for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Database({} facts)", self.fact_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn csts(i: &mut Interner, names: &[&str]) -> Vec<Cst> {
        names.iter().map(|n| Cst(i.intern(n))).collect()
    }

    #[test]
    fn insert_dedups() {
        let mut i = Interner::new();
        let c = csts(&mut i, &["a", "b"]);
        let mut r = Relation::new(2);
        assert!(r.insert(&c));
        assert!(!r.insert(&c));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&c));
    }

    #[test]
    fn rows_are_pooled_and_addressable() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let mut r = Relation::new(2);
        let id0 = r.insert_row(&[v[0], v[1]]).unwrap();
        let id1 = r.insert_row(&[v[1], v[2]]).unwrap();
        assert!(r.insert_row(&[v[0], v[1]]).is_none());
        assert_eq!(id0, RowId(0));
        assert_eq!(id1, RowId(1));
        assert_eq!(r.row(id1), &[v[1], v[2]]);
        let collected: Vec<&[Cst]> = r.rows().collect();
        assert_eq!(collected, vec![&[v[0], v[1]][..], &[v[1], v[2]][..]]);
    }

    #[test]
    fn arity_zero_rows_dedup() {
        let mut r = Relation::new(0);
        assert!(r.insert(&[]));
        assert!(!r.insert(&[]));
        assert_eq!(r.len(), 1);
        assert!(r.contains(&[]));
        assert_eq!(r.rows().count(), 1);
        assert_eq!(r.row(RowId(0)), &[] as &[Cst]);
    }

    #[test]
    fn select_filters_by_pattern() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let (a, b, c) = (v[0], v[1], v[2]);
        let mut r = Relation::new(2);
        r.insert(&[a, b]);
        r.insert(&[a, c]);
        r.insert(&[b, c]);
        assert_eq!(r.select(&[Some(a), None]).count(), 2);
        assert_eq!(r.select(&[None, Some(c)]).count(), 2);
        assert_eq!(r.select(&[Some(b), Some(b)]).count(), 0);
        assert_eq!(r.select(&[None, None]).count(), 3);
    }

    #[test]
    fn rows_from_exposes_delta() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b"]);
        let mut r = Relation::new(1);
        r.insert(&[v[0]]);
        let mark = r.len();
        r.insert(&[v[1]]);
        let delta: Vec<&[Cst]> = r.rows_from(mark).collect();
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0][0], v[1]);
    }

    #[test]
    fn rows_range_is_a_chunk() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c", "d"]);
        let mut r = Relation::new(1);
        for &c in &v {
            r.insert(&[c]);
        }
        let chunk: Vec<&[Cst]> = r.rows_range(1, 3).collect();
        assert_eq!(chunk, vec![&[v[1]][..], &[v[2]][..]]);
        assert_eq!(r.rows_range(2, 2).count(), 0);
    }

    /// Resolves a probe to confirmed rows (re-checking the key), in id
    /// order — the test-side equivalent of what the compiled executor does.
    fn probe_rows<'a>(r: &'a Relation, sig: u64, key: &[Cst]) -> Vec<&'a [Cst]> {
        let ids: &[u32] = match r.probe(sig, key) {
            Probe::Index(ids) | Probe::Partial(ids) => ids,
            Probe::Scan => return r.rows().collect(),
        };
        ids.iter()
            .map(|&i| r.row(RowId(i)))
            .filter(|row| {
                let mut bits = sig;
                let mut ki = 0;
                let mut ok = true;
                while bits != 0 {
                    let col = bits.trailing_zeros() as usize;
                    ok &= row[col] == key[ki];
                    bits &= bits - 1;
                    ki += 1;
                }
                ok
            })
            .collect()
    }

    #[test]
    fn composite_probe_answers_multi_column_keys() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let (a, b, c) = (v[0], v[1], v[2]);
        let mut r = Relation::new(3);
        r.insert(&[a, b, c]);
        r.insert(&[a, b, a]);
        r.insert(&[a, c, c]);
        // Without the index, a two-column probe is only partially covered.
        assert!(matches!(r.probe(0b011, &[a, b]), Probe::Partial(_)));
        assert_eq!(probe_rows(&r, 0b011, &[a, b]).len(), 2);
        // Build it: the same probe is now fully covered.
        r.ensure_composite(0b011);
        assert!(r.has_composite(0b011));
        assert!(matches!(r.probe(0b011, &[a, b]), Probe::Index(_)));
        assert_eq!(probe_rows(&r, 0b011, &[a, b]).len(), 2);
        assert_eq!(probe_rows(&r, 0b011, &[b, b]).len(), 0);
        // Columns 0 and 2 (non-adjacent signature).
        r.ensure_composite(0b101);
        assert_eq!(probe_rows(&r, 0b101, &[a, c]).len(), 2);
    }

    #[test]
    fn composite_index_is_maintained_on_insert() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let (a, b, c) = (v[0], v[1], v[2]);
        let mut r = Relation::new(2);
        r.insert(&[a, b]);
        r.ensure_composite(0b11);
        r.insert(&[a, c]);
        r.insert(&[a, b]); // duplicate: must not double-index
        assert_eq!(probe_rows(&r, 0b11, &[a, c]).len(), 1);
        assert_eq!(probe_rows(&r, 0b11, &[a, b]).len(), 1);
    }

    #[test]
    fn single_column_probes_use_column_index() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b"]);
        let mut r = Relation::new(2);
        r.insert(&[v[0], v[1]]);
        r.insert(&[v[1], v[1]]);
        // Column signatures with one bit never build anything...
        r.ensure_composite(0b10);
        assert!(r.has_composite(0b10));
        // ...but are still fully covered probes.
        assert!(matches!(r.probe(0b10, &[v[1]]), Probe::Index(_)));
        assert_eq!(probe_rows(&r, 0b10, &[v[1]]).len(), 2);
        assert!(matches!(r.probe(0, &[]), Probe::Scan));
    }

    #[test]
    fn bloom_rejects_absent_keys_without_losing_rows() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c", "d"]);
        let (a, b, c, d) = (v[0], v[1], v[2], v[3]);
        let mut r = Relation::new(2);
        r.insert(&[a, b]);
        r.ensure_composite(0b11);
        r.insert(&[c, d]); // bloom maintained on insert
                           // Present keys are found through the bloom.
        assert_eq!(probe_rows(&r, 0b11, &[a, b]).len(), 1);
        assert_eq!(probe_rows(&r, 0b11, &[c, d]).len(), 1);
        // Absent keys yield zero candidates whether the bloom rejects them
        // or the bucket lookup misses.
        assert_eq!(probe_rows(&r, 0b11, &[a, d]).len(), 0);
        match r.composite_probe(0b11, hash_key(&[a, b])) {
            CompositeProbe::Bucket(ids) => assert_eq!(ids.len(), 1),
            other => panic!("expected bucket, got {other:?}"),
        }
        assert!(matches!(
            r.composite_probe(0b01, hash_key(&[a])),
            CompositeProbe::NotBuilt
        ));
        // Sweep many absent keys: every one must resolve to zero confirmed
        // rows; at least some should be bloom rejections (8192 bits, 2 keys
        // set — collisions are overwhelmingly unlikely for all 16 probes).
        let extra = csts(&mut i, &["e0", "e1", "e2", "e3"]);
        let mut rejects = 0;
        for &x in &extra {
            for &y in &extra {
                assert_eq!(probe_rows(&r, 0b11, &[x, y]).len(), 0);
                if matches!(
                    r.composite_probe(0b11, hash_key(&[x, y])),
                    CompositeProbe::BloomReject
                ) {
                    rejects += 1;
                }
            }
        }
        assert!(rejects > 0, "no bloom rejections across 16 absent keys");
    }

    #[test]
    fn live_stats_report_and_clear_the_delta_sketch() {
        let mut i = Interner::new();
        let v = csts(&mut i, &["a", "b", "c"]);
        let (a, b, c) = (v[0], v[1], v[2]);
        let mut r = Relation::new(2);
        r.insert(&[a, b]);
        r.insert(&[a, c]);
        let s = r.live_stats(0);
        assert_eq!(s.rows, 2);
        assert_eq!(s.delta_rows, 2);
        assert_eq!(s.delta_distinct.len(), 2);
        assert_eq!(s.delta_distinct[0], 1); // only `a` in column 0
        assert!(s.delta_distinct[1] >= 1 && s.delta_distinct[1] <= 2);
        // The snapshot cleared the sketch: a new snapshot past the same
        // mark still counts rows but sees no freshly-sketched values.
        let s2 = r.live_stats(2);
        assert_eq!(s2.delta_rows, 0);
        assert_eq!(s2.delta_distinct, vec![0, 0]);
        // Plain stats never carry delta fields.
        let plain = r.stats();
        assert_eq!(plain.delta_rows, 0);
        assert!(plain.delta_distinct.is_empty());
    }

    #[test]
    fn plan_stats_live_uses_marks() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let v = csts(&mut i, &["a", "b", "c"]);
        let mut db = Database::new();
        db.insert(p, &[v[0]]);
        db.insert(p, &[v[1]]);
        db.insert(p, &[v[2]]);
        let live = db.plan_stats_live(|_| 1);
        let s = live.get(p).expect("P snapshotted");
        assert_eq!(s.rows, 3);
        assert_eq!(s.delta_rows, 2);
        assert_eq!(live.total_rows(), 3);
    }

    #[test]
    fn database_creates_relations_on_demand() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let a = Cst(i.intern("a"));
        let mut db = Database::new();
        assert!(db.relation(p).is_none());
        assert!(db.insert(p, &[a]));
        assert!(db.contains(p, &[a]));
        assert_eq!(db.fact_count(), 1);
    }

    #[test]
    #[should_panic(expected = "two arities")]
    fn arity_conflict_panics() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let a = Cst(i.intern("a"));
        let mut db = Database::new();
        db.insert(p, &[a]);
        db.relation_mut(p, 2);
    }

    #[test]
    fn dump_is_sorted_and_readable() {
        let mut i = Interner::new();
        let p = Pred(i.intern("P"));
        let q = Pred(i.intern("Q"));
        let v = csts(&mut i, &["b", "a"]);
        let mut db = Database::new();
        db.insert(p, &[v[0]]);
        db.insert(q, &[v[1], v[0]]);
        assert_eq!(db.dump(&i), vec!["P(b)".to_string(), "Q(a,b)".to_string()]);
    }
}
