//! The precedence ordering `≺` on ground functional terms (§3.4).
//!
//! Algorithm Q chooses, as the representative of every congruence cluster,
//! "the smallest of all congruent terms in the precedence ordering. If we
//! picture the set of functional terms as a tree, the precedence ordering
//! corresponds to a breadth-first traversal of the tree." (§3.4)
//!
//! Breadth-first means: compare by depth first, and among terms of equal
//! depth lexicographically by the symbol path from the root, using a fixed
//! total order on the function symbols. The symbol order is supplied
//! explicitly (normally: the order in which the program declares its function
//! symbols), which reproduces the paper's example `0 ≺ f1(0) ≺ f2(0) ≺
//! f1(f1(0)) ≺ …`.

use crate::hash::FxHashMap;
use crate::interner::Func;
use crate::tree::{NodeId, TermTree};
use std::cmp::Ordering;

/// A total order on the pure function symbols of a program.
#[derive(Clone, Default)]
pub struct FuncOrder {
    rank: FxHashMap<Func, u32>,
    order: Vec<Func>,
}

impl FuncOrder {
    /// Builds the order from an explicit sequence of symbols (first = least).
    pub fn new(symbols: impl IntoIterator<Item = Func>) -> Self {
        let mut rank = FxHashMap::default();
        let mut order = Vec::new();
        for f in symbols {
            if rank.contains_key(&f) {
                continue;
            }
            rank.insert(f, order.len() as u32);
            order.push(f);
        }
        FuncOrder { rank, order }
    }

    /// Rank of a symbol. Panics if the symbol was not registered — orders are
    /// always built from the complete symbol set of a program.
    pub fn rank(&self, f: Func) -> u32 {
        *self
            .rank
            .get(&f)
            .expect("function symbol missing from FuncOrder")
    }

    /// The symbols in ascending order.
    pub fn symbols(&self) -> &[Func] {
        &self.order
    }

    /// Number of symbols (`m` in the paper's Lemma 3.2 when all symbols are
    /// pure).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// Comparator implementing the precedence ordering `≺` over nodes of a
/// [`TermTree`].
pub struct Precedence<'a> {
    tree: &'a TermTree,
    order: &'a FuncOrder,
}

impl<'a> Precedence<'a> {
    /// Creates a comparator over `tree` using `order` for symbols.
    pub fn new(tree: &'a TermTree, order: &'a FuncOrder) -> Self {
        Precedence { tree, order }
    }

    /// Compares two terms in the precedence ordering.
    pub fn cmp(&self, a: NodeId, b: NodeId) -> Ordering {
        if a == b {
            return Ordering::Equal;
        }
        let (da, db) = (self.tree.depth(a), self.tree.depth(b));
        match da.cmp(&db) {
            Ordering::Equal => {}
            other => return other,
        }
        // Equal depth: lexicographic on root-to-leaf symbol ranks.
        let pa = self.tree.path(a);
        let pb = self.tree.path(b);
        for (fa, fb) in pa.iter().zip(pb.iter()) {
            match self.order.rank(*fa).cmp(&self.order.rank(*fb)) {
                Ordering::Equal => {}
                other => return other,
            }
        }
        Ordering::Equal
    }

    /// `a ≺ b` in the precedence ordering.
    pub fn precedes(&self, a: NodeId, b: NodeId) -> bool {
        self.cmp(a, b) == Ordering::Less
    }

    /// Enumerates all terms of exactly `depth`, smallest first, interning
    /// them into a clone-free callback. Used to seed Algorithm Q with the
    /// `Potential` terms of depth `c + 1` (§3.4).
    pub fn nodes_at_depth(tree: &mut TermTree, order: &FuncOrder, depth: usize) -> Vec<NodeId> {
        let mut frontier = vec![tree.root()];
        for _ in 0..depth {
            let mut next = Vec::with_capacity(frontier.len() * order.len());
            for n in &frontier {
                for &f in order.symbols() {
                    next.push(tree.child(*n, f));
                }
            }
            frontier = next;
        }
        frontier
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    fn setup() -> (TermTree, FuncOrder, Func, Func) {
        let mut i = Interner::new();
        let f1 = Func(i.intern("f1"));
        let f2 = Func(i.intern("f2"));
        (TermTree::new(), FuncOrder::new([f1, f2]), f1, f2)
    }

    #[test]
    fn depth_dominates() {
        let (mut t, ord, f1, f2) = setup();
        let deep = t.intern_path(&[f1, f1]);
        let shallow = t.intern_path(&[f2]);
        let p = Precedence::new(&t, &ord);
        assert!(p.precedes(shallow, deep));
    }

    #[test]
    fn paper_example_ordering() {
        // §3.4: 0 ≺ f1(0) ≺ f2(0) ≺ f1(f1(0)) ≺ f2(f1(0)) ≺ f1(f2(0)) ≺ …
        // With innermost-first paths, equal-depth terms compare
        // lexicographically from the innermost symbol, so f2(f1(0)) = [f1,f2]
        // precedes f1(f2(0)) = [f2,f1].
        let (mut t, ord, f1, f2) = setup();
        let seq = [
            t.root(),
            t.intern_path(&[f1]),
            t.intern_path(&[f2]),
            t.intern_path(&[f1, f1]),
            t.intern_path(&[f1, f2]),
            t.intern_path(&[f2, f1]),
            t.intern_path(&[f2, f2]),
        ];
        let p = Precedence::new(&t, &ord);
        for w in seq.windows(2) {
            assert!(p.precedes(w[0], w[1]));
        }
    }

    #[test]
    fn cmp_is_reflexively_equal() {
        let (mut t, ord, f1, _) = setup();
        let n = t.intern_path(&[f1]);
        let p = Precedence::new(&t, &ord);
        assert_eq!(p.cmp(n, n), std::cmp::Ordering::Equal);
    }

    #[test]
    fn nodes_at_depth_enumerates_in_order() {
        let (mut t, ord, _, _) = setup();
        let lvl2 = Precedence::nodes_at_depth(&mut t, &ord, 2);
        assert_eq!(lvl2.len(), 4);
        let p = Precedence::new(&t, &ord);
        for w in lvl2.windows(2) {
            assert!(p.precedes(w[0], w[1]));
        }
    }

    #[test]
    fn func_order_dedups() {
        let (_, _, f1, f2) = setup();
        let ord = FuncOrder::new([f1, f2, f1]);
        assert_eq!(ord.len(), 2);
        assert_eq!(ord.rank(f1), 0);
        assert_eq!(ord.rank(f2), 1);
    }
}

#[cfg(test)]
mod order_laws {
    use super::*;
    use crate::interner::Interner;
    use proptest::prelude::*;

    fn arb_path() -> impl Strategy<Value = Vec<u8>> {
        proptest::collection::vec(0u8..3, 0..6)
    }

    proptest! {
        /// ≺ is a strict total order on distinct terms: antisymmetric,
        /// transitive, total.
        #[test]
        fn precedence_is_a_total_order(
            pa in arb_path(),
            pb in arb_path(),
            pc in arb_path(),
        ) {
            let mut i = Interner::new();
            let syms: Vec<Func> = (0..3).map(|k| Func(i.intern(&format!("f{k}")))).collect();
            let ord = FuncOrder::new(syms.iter().copied());
            let mut tree = TermTree::new();
            let to_node = |tree: &mut TermTree, p: &[u8]| {
                let path: Vec<Func> = p.iter().map(|&k| syms[k as usize]).collect();
                tree.intern_path(&path)
            };
            let (a, b, c) = (
                to_node(&mut tree, &pa),
                to_node(&mut tree, &pb),
                to_node(&mut tree, &pc),
            );
            let prec = Precedence::new(&tree, &ord);
            // Totality + antisymmetry.
            let ab = prec.cmp(a, b);
            prop_assert_eq!(ab == std::cmp::Ordering::Equal, a == b);
            prop_assert_eq!(ab.reverse(), prec.cmp(b, a));
            // Transitivity.
            if prec.precedes(a, b) && prec.precedes(b, c) {
                prop_assert!(prec.precedes(a, c));
            }
            // Depth dominance (breadth-first).
            if tree.depth(a) < tree.depth(b) {
                prop_assert!(prec.precedes(a, b));
            }
        }
    }
}
