#![warn(missing_docs)]
//! Symbols and ground functional terms for functional deductive databases.
//!
//! This crate is the lowest layer of the `fundb` workspace, the Rust
//! reproduction of Chomicki & Imieliński, *Relational Specifications of
//! Infinite Query Answers* (SIGMOD 1989). It provides:
//!
//! * a string [`Interner`] producing compact [`Sym`] handles,
//! * typed symbol wrappers ([`Pred`], [`Func`], [`Cst`], [`Var`], [`MixedSym`])
//!   for the four syntactic categories of the paper's language (§2.1),
//! * a [`TermTree`] interning **ground pure functional terms** — after the
//!   paper's mixed→pure transformation (§2.4) every ground functional term is
//!   a chain of unary function symbols applied to the unique functional
//!   constant `0`, i.e. a node of the infinite |F|-ary tree rooted at `0`,
//! * the breadth-first *precedence ordering* `≺` on ground terms used by
//!   Algorithm Q (§3.4) to pick the smallest representative of each cluster,
//! * fast hashing utilities ([`FxHashMap`], [`FxHashSet`]) used throughout
//!   the workspace.

pub mod hash;
pub mod interner;
pub mod order;
pub mod tree;
pub mod trie;

pub use hash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use interner::{Cst, Func, Interner, MixedSym, Pred, Sym, Var};
pub use order::{FuncOrder, Precedence};
pub use tree::{NodeId, TermTree};
pub use trie::{PathTrie, TrieNode};
