//! A small FxHash-style hasher.
//!
//! Symbols and node ids are dense small integers, for which SipHash (the
//! standard-library default) is needlessly slow and HashDoS resistance is
//! irrelevant. This is the classic Fx multiply-rotate hash used by rustc,
//! implemented in-tree to keep the dependency set minimal.

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Firefox/rustc Fx hash (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic hasher for small keys.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_small_keys_hash_differently() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // Fx is not perfect, but over 10k consecutive integers it should be
        // collision-free.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn byte_writes_cover_remainder_path() {
        let mut a = FxHasher::default();
        a.write(b"abcdefghij"); // 8-byte chunk + 2-byte remainder
        let mut b = FxHasher::default();
        b.write(b"abcdefghik");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(7, "seven");
        assert_eq!(m[&7], "seven");
        let mut s: FxHashSet<u32> = FxHashSet::default();
        s.insert(7);
        assert!(s.contains(&7));
    }
}
