//! The infinite term tree, interned lazily.
//!
//! After normalization and the mixed→pure transformation (§2.4), the ground
//! functional terms of a program form the infinite |F|-ary tree rooted at the
//! unique functional constant `0`: the node reached from the root along the
//! symbol path `f₁ f₂ … fₙ` is the term `fₙ(…f₂(f₁(0))…)`.
//!
//! [`TermTree`] interns the finite portion of that tree a computation
//! actually visits. Nodes are dense [`NodeId`]s, so per-node attributes
//! (states, marks) can live in plain vectors on the caller's side.

use crate::hash::FxHashMap;
use crate::interner::{Func, Interner};
use std::fmt;

/// A node of the term tree — i.e. an interned ground pure functional term.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Dense index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[derive(Clone)]
struct NodeData {
    /// Parent node with the symbol on the incoming edge; `None` for the root.
    parent: Option<(NodeId, Func)>,
    /// Distance from the root = depth of the term (§2.1: `depth(0) = 0`).
    depth: u32,
}

/// Lazily interned prefix of the infinite term tree rooted at `0`.
#[derive(Clone)]
pub struct TermTree {
    nodes: Vec<NodeData>,
    children: FxHashMap<(NodeId, Func), NodeId>,
}

impl Default for TermTree {
    fn default() -> Self {
        Self::new()
    }
}

impl TermTree {
    /// Creates a tree containing only the root `0`.
    pub fn new() -> Self {
        TermTree {
            nodes: vec![NodeData {
                parent: None,
                depth: 0,
            }],
            children: FxHashMap::default(),
        }
    }

    /// The root node, i.e. the functional constant `0`.
    #[inline]
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether only the root is interned.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Interns (or retrieves) the child `f(n)`.
    pub fn child(&mut self, n: NodeId, f: Func) -> NodeId {
        if let Some(&c) = self.children.get(&(n, f)) {
            return c;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("term tree overflow"));
        self.nodes.push(NodeData {
            parent: Some((n, f)),
            depth: self.nodes[n.index()].depth + 1,
        });
        self.children.insert((n, f), id);
        id
    }

    /// Retrieves the child `f(n)` if it has been interned.
    pub fn get_child(&self, n: NodeId, f: Func) -> Option<NodeId> {
        self.children.get(&(n, f)).copied()
    }

    /// The parent together with the edge symbol, or `None` for the root.
    /// For `n = f(t)` this returns `(t, f)`.
    pub fn parent(&self, n: NodeId) -> Option<(NodeId, Func)> {
        self.nodes[n.index()].parent
    }

    /// Depth of the term (number of function applications above `0`).
    #[inline]
    pub fn depth(&self, n: NodeId) -> usize {
        self.nodes[n.index()].depth as usize
    }

    /// The symbol path from the root to `n`, innermost application first:
    /// `path(f₂(f₁(0))) = [f₁, f₂]`.
    pub fn path(&self, n: NodeId) -> Vec<Func> {
        let mut out = Vec::with_capacity(self.depth(n));
        let mut cur = n;
        while let Some((p, f)) = self.parent(cur) {
            out.push(f);
            cur = p;
        }
        out.reverse();
        out
    }

    /// Interns the term denoted by a root-to-leaf symbol path
    /// (innermost application first) and returns its node.
    pub fn intern_path(&mut self, path: &[Func]) -> NodeId {
        let mut cur = self.root();
        for &f in path {
            cur = self.child(cur, f);
        }
        cur
    }

    /// Looks up the node for a path without interning; `None` if any prefix
    /// is missing.
    pub fn lookup_path(&self, path: &[Func]) -> Option<NodeId> {
        let mut cur = self.root();
        for &f in path {
            cur = self.get_child(cur, f)?;
        }
        Some(cur)
    }

    /// Renders the term as nested applications, e.g. `exta(extb(0))`.
    pub fn display<'a>(&'a self, n: NodeId, interner: &'a Interner) -> TermDisplay<'a> {
        TermDisplay {
            tree: self,
            node: n,
            interner,
        }
    }
}

/// Display adapter returned by [`TermTree::display`].
pub struct TermDisplay<'a> {
    tree: &'a TermTree,
    node: NodeId,
    interner: &'a Interner,
}

impl fmt::Display for TermDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let path = self.tree.path(self.node);
        // Outermost symbol is printed first.
        for sym in path.iter().rev() {
            write!(f, "{}(", self.interner.resolve(sym.sym()))?;
        }
        write!(f, "0")?;
        for _ in &path {
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Interner, TermTree, Func, Func) {
        let mut i = Interner::new();
        let f = Func(i.intern("f"));
        let g = Func(i.intern("g"));
        (i, TermTree::new(), f, g)
    }

    #[test]
    fn root_has_depth_zero_and_no_parent() {
        let (_, t, _, _) = setup();
        assert_eq!(t.depth(t.root()), 0);
        assert!(t.parent(t.root()).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn children_are_interned_once() {
        let (_, mut t, f, _) = setup();
        let a = t.child(t.root(), f);
        let b = t.child(t.root(), f);
        assert_eq!(a, b);
        assert_eq!(t.len(), 2);
        assert_eq!(t.depth(a), 1);
        assert_eq!(t.parent(a), Some((t.root(), f)));
    }

    #[test]
    fn paths_round_trip() {
        let (_, mut t, f, g) = setup();
        let n = t.intern_path(&[f, g, f]);
        assert_eq!(t.depth(n), 3);
        assert_eq!(t.path(n), vec![f, g, f]);
        assert_eq!(t.lookup_path(&[f, g, f]), Some(n));
        assert_eq!(t.lookup_path(&[g]), None);
    }

    #[test]
    fn display_nests_outermost_first() {
        let (i, mut t, f, g) = setup();
        // path [f, g] denotes g(f(0))
        let n = t.intern_path(&[f, g]);
        assert_eq!(t.display(n, &i).to_string(), "g(f(0))");
        assert_eq!(t.display(t.root(), &i).to_string(), "0");
    }

    #[test]
    fn distinct_paths_are_distinct_nodes() {
        let (_, mut t, f, g) = setup();
        let fg = t.intern_path(&[f, g]);
        let gf = t.intern_path(&[g, f]);
        assert_ne!(fg, gf);
    }
}
