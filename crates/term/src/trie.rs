//! A hash-consed trie over `[Func]` prefixes carrying a `u32` payload.
//!
//! Serving-layer canonicalization answers "which specification node
//! represents the cluster of this path?" for many overlapping paths. The
//! walk itself is O(|path|); a [`PathTrie`] memoizes every prefix seen so
//! far — each distinct prefix becomes one dense trie node holding the
//! payload computed for it — so a lookup costs O(unseen suffix) instead of
//! O(path). Prefixes are hash-consed: re-inserting an existing prefix is a
//! no-op returning the existing node, so the trie never holds duplicates
//! and memory is bounded by the number of distinct prefixes ever queried.
//!
//! The payload is an opaque `u32` chosen by the caller (the serving layer
//! stores dense specification-node indices).

use crate::hash::FxHashMap;
use crate::interner::Func;

/// Dense handle of a memoized prefix in a [`PathTrie`].
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct TrieNode(u32);

impl TrieNode {
    /// Dense index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Hash-consed `[Func]`-prefix → `u32` memo table.
#[derive(Clone, Debug)]
pub struct PathTrie {
    /// `(prefix node, next symbol) → extended prefix node`.
    edges: FxHashMap<(TrieNode, Func), TrieNode>,
    /// Payload of each prefix, by dense node index. `values[0]` is the
    /// payload of the empty prefix.
    values: Vec<u32>,
}

impl PathTrie {
    /// Creates a trie containing only the empty prefix with the given
    /// payload.
    pub fn new(root_value: u32) -> Self {
        PathTrie {
            edges: FxHashMap::default(),
            values: vec![root_value],
        }
    }

    /// The node of the empty prefix.
    #[inline]
    pub fn root(&self) -> TrieNode {
        TrieNode(0)
    }

    /// Number of memoized prefixes (including the empty one).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether only the empty prefix is memoized.
    pub fn is_empty(&self) -> bool {
        self.values.len() == 1
    }

    /// Payload stored for a memoized prefix.
    #[inline]
    pub fn value(&self, n: TrieNode) -> u32 {
        self.values[n.index()]
    }

    /// The memoized extension of prefix `n` by symbol `f`, if present.
    #[inline]
    pub fn get_child(&self, n: TrieNode, f: Func) -> Option<TrieNode> {
        self.edges.get(&(n, f)).copied()
    }

    /// Extends prefix `n` by `f`, storing `value` for the new prefix.
    /// Hash-consed: if the extension is already memoized the existing node
    /// is returned and `value` is ignored (first write wins).
    pub fn child(&mut self, n: TrieNode, f: Func, value: u32) -> TrieNode {
        if let Some(&c) = self.edges.get(&(n, f)) {
            return c;
        }
        let id = TrieNode(u32::try_from(self.values.len()).expect("path trie overflow"));
        self.values.push(value);
        self.edges.insert((n, f), id);
        id
    }

    /// Walks the longest memoized prefix of `path`. Returns the deepest
    /// node reached and how many symbols it covers; `path[consumed..]` is
    /// the unmemoized suffix.
    pub fn longest_prefix(&self, path: &[Func]) -> (TrieNode, usize) {
        let mut node = self.root();
        for (i, &f) in path.iter().enumerate() {
            match self.get_child(node, f) {
                Some(c) => node = c,
                None => return (node, i),
            }
        }
        (node, path.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;

    fn funcs(n: usize) -> Vec<Func> {
        let mut i = Interner::new();
        (0..n).map(|k| Func(i.intern(&format!("f{k}")))).collect()
    }

    #[test]
    fn empty_trie_covers_nothing_but_the_root() {
        let fs = funcs(2);
        let t = PathTrie::new(7);
        assert!(t.is_empty());
        assert_eq!(t.value(t.root()), 7);
        let (node, consumed) = t.longest_prefix(&[fs[0], fs[1]]);
        assert_eq!(node, t.root());
        assert_eq!(consumed, 0);
    }

    #[test]
    fn inserted_prefixes_are_found_and_shared() {
        let fs = funcs(2);
        let (f, g) = (fs[0], fs[1]);
        let mut t = PathTrie::new(0);
        let nf = t.child(t.root(), f, 10);
        let nfg = t.child(nf, g, 20);
        // Hash-consing: re-inserting returns the same node, value untouched.
        assert_eq!(t.child(t.root(), f, 99), nf);
        assert_eq!(t.value(nf), 10);
        assert_eq!(t.len(), 3);

        let (node, consumed) = t.longest_prefix(&[f, g, f]);
        assert_eq!(node, nfg);
        assert_eq!(consumed, 2);
        assert_eq!(t.value(node), 20);
    }

    #[test]
    fn sibling_branches_do_not_collide() {
        let fs = funcs(2);
        let (f, g) = (fs[0], fs[1]);
        let mut t = PathTrie::new(0);
        let nf = t.child(t.root(), f, 1);
        let ng = t.child(t.root(), g, 2);
        assert_ne!(nf, ng);
        assert_eq!(t.longest_prefix(&[f]).0, nf);
        assert_eq!(t.longest_prefix(&[g]).0, ng);
    }
}
