//! String interning and typed symbol handles.
//!
//! The paper's language (§2.1) partitions symbols into predicate symbols,
//! pure (unary) function symbols, mixed (k-ary, k ≥ 2) function symbols,
//! non-functional constants, and variables. All of them are interned strings;
//! the typed wrappers make it impossible to confuse the categories at the API
//! level while keeping every handle a 4-byte copyable id.

use crate::hash::{FxHashMap, FxHasher};
use std::fmt;
use std::hash::Hasher;

/// An interned string handle. Ordering follows interning order, which the
/// rest of the workspace uses as a stable, deterministic symbol order.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// Sentinel handle that never resolves: used to pre-size buffers (e.g.
    /// register files) whose slots are always written before they are read.
    /// Resolving it panics, which is exactly what a read-before-write bug
    /// should do.
    pub const PLACEHOLDER: Sym = Sym(u32::MAX);

    /// The dense index of this symbol (0-based interning order).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Mints a handle at an arbitrary index, for symbols that are never
    /// interned. Program transformations (e.g. the magic-set rewrite) use
    /// indices past every interned symbol to name auxiliary predicates
    /// without threading a `&mut Interner` through the rewrite; such
    /// handles must stay internal to the transformed program, since
    /// resolving them against an interner panics.
    #[inline]
    pub fn synthetic(index: u32) -> Sym {
        Sym(index)
    }
}

impl fmt::Debug for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Sym({})", self.0)
    }
}

/// A string interner. Interning the same string twice yields the same
/// [`Sym`]; resolution is O(1). Each name is stored exactly once, in
/// `names`; the lookup table maps a name's hash to the candidate ids and
/// confirms against that single copy.
#[derive(Default, Clone)]
pub struct Interner {
    names: Vec<Box<str>>,
    /// `map[hash(name)]` = ids of names with that hash.
    map: FxHashMap<u64, Vec<u32>>,
}

fn hash_name(name: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(name.as_bytes());
    h.finish()
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Interner({} symbols)", self.names.len())
    }
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its stable handle.
    pub fn intern(&mut self, name: &str) -> Sym {
        let bucket = self.map.entry(hash_name(name)).or_default();
        if let Some(&id) = bucket.iter().find(|&&id| &*self.names[id as usize] == name) {
            return Sym(id);
        }
        let id = u32::try_from(self.names.len()).expect("interner overflow");
        self.names.push(name.into());
        bucket.push(id);
        Sym(id)
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, name: &str) -> Option<Sym> {
        self.map.get(&hash_name(name)).and_then(|bucket| {
            bucket
                .iter()
                .find(|&&id| &*self.names[id as usize] == name)
                .map(|&id| Sym(id))
        })
    }

    /// Resolves a handle back to its string.
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Generates a symbol guaranteed to be fresh (not previously interned),
    /// built from `stem`. Used by the normalization pass (paper Appendix) to
    /// mint auxiliary predicate names.
    pub fn fresh(&mut self, stem: &str) -> Sym {
        if self.get(stem).is_none() {
            return self.intern(stem);
        }
        let mut i = 1usize;
        loop {
            let candidate = format!("{stem}#{i}");
            if self.get(&candidate).is_none() {
                return self.intern(&candidate);
            }
            i += 1;
        }
    }
}

macro_rules! typed_symbol {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub Sym);

        impl $name {
            /// The underlying interned string handle.
            #[inline]
            pub fn sym(self) -> Sym {
                self.0
            }

            /// Dense index of the underlying symbol.
            #[inline]
            pub fn index(self) -> usize {
                self.0.index()
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0.index())
            }
        }
    };
}

typed_symbol!(
    /// A predicate symbol (functional or non-functional; §2.1).
    Pred
);
typed_symbol!(
    /// A pure (unary) function symbol (§2.1). After the mixed→pure
    /// transformation of §2.4 these are the only function symbols left.
    Func
);
typed_symbol!(
    /// A non-functional constant (an ordinary database constant).
    Cst
);
typed_symbol!(
    /// A variable (functional or non-functional; the distinction is recorded
    /// in the surrounding program, not in the handle).
    Var
);

/// A mixed function symbol `g` of arity `k ≥ 2`: one functional argument plus
/// `k − 1` non-functional ones (§2.1). Eliminated by the transformation of
/// §2.4 before evaluation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct MixedSym {
    /// Symbol name.
    pub name: Sym,
    /// Number of non-functional arguments (`k − 1 ≥ 1`).
    pub extra_args: u8,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("Meets");
        let b = i.intern("Meets");
        assert_eq!(a, b);
        assert_eq!(i.resolve(a), "Meets");
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        let s = i.intern("x");
        assert_eq!(i.get("x"), Some(s));
    }

    #[test]
    fn fresh_avoids_collisions() {
        let mut i = Interner::new();
        let a = i.intern("P1");
        let b = i.fresh("P1");
        let c = i.fresh("P1");
        assert_ne!(a.index(), b.index());
        assert_ne!(b.index(), c.index());
        assert_eq!(i.resolve(b), "P1#1");
        assert_eq!(i.resolve(c), "P1#2");
    }

    #[test]
    fn symbol_order_follows_interning_order() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let z = i.intern("0");
        assert!(a < b && b < z);
    }

    #[test]
    fn typed_wrappers_are_distinct_types_over_same_sym() {
        let mut i = Interner::new();
        let s = i.intern("f");
        let f = Func(s);
        let p = Pred(s);
        assert_eq!(f.sym(), p.sym());
        assert_eq!(f.index(), 0);
    }
}
