//! A classic disjoint-set forest with union by rank and path compression.

/// Disjoint-set forest over dense `usize` ids.
#[derive(Clone, Debug, Default)]
pub struct UnionFind {
    parent: Vec<u32>,
    rank: Vec<u8>,
    classes: usize,
}

impl UnionFind {
    /// Creates a structure with `n` singleton classes `0 .. n`.
    pub fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            classes: n,
        }
    }

    /// Adds a fresh singleton and returns its id.
    pub fn push(&mut self) -> usize {
        let id = self.parent.len();
        self.parent.push(id as u32);
        self.rank.push(0);
        self.classes += 1;
        id
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of distinct classes.
    pub fn class_count(&self) -> usize {
        self.classes
    }

    /// Representative of `x`'s class, with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        // Compress.
        let mut cur = x;
        while self.parent[cur] as usize != root {
            let next = self.parent[cur] as usize;
            self.parent[cur] = root as u32;
            cur = next;
        }
        root
    }

    /// Representative without mutation (no compression). O(depth).
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] as usize != root {
            root = self.parent[root] as usize;
        }
        root
    }

    /// Merges the classes of `a` and `b`; returns the surviving
    /// representative, or `None` if they were already equal.
    pub fn union(&mut self, a: usize, b: usize) -> Option<usize> {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return None;
        }
        self.classes -= 1;
        let (winner, loser) = match self.rank[ra].cmp(&self.rank[rb]) {
            std::cmp::Ordering::Less => (rb, ra),
            std::cmp::Ordering::Greater => (ra, rb),
            std::cmp::Ordering::Equal => {
                self.rank[ra] += 1;
                (ra, rb)
            }
        };
        self.parent[loser] = winner as u32;
        Some(winner)
    }

    /// Whether `a` and `b` are in the same class.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Fully compresses every path so that each element points directly at
    /// its representative. Afterwards [`UnionFind::find_immutable`] is O(1)
    /// for every element, which is what frozen (shared, `&self`) readers
    /// rely on.
    pub fn compress_all(&mut self) {
        for x in 0..self.parent.len() {
            self.find(x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_elements_are_singletons() {
        let mut uf = UnionFind::new(3);
        assert_eq!(uf.class_count(), 3);
        assert!(!uf.same(0, 1));
        assert_eq!(uf.find(2), 2);
    }

    #[test]
    fn union_merges_and_counts() {
        let mut uf = UnionFind::new(4);
        assert!(uf.union(0, 1).is_some());
        assert!(uf.union(1, 2).is_some());
        assert!(uf.union(0, 2).is_none());
        assert_eq!(uf.class_count(), 2);
        assert!(uf.same(0, 2));
        assert!(!uf.same(0, 3));
    }

    #[test]
    fn push_extends() {
        let mut uf = UnionFind::new(1);
        let id = uf.push();
        assert_eq!(id, 1);
        assert_eq!(uf.len(), 2);
        uf.union(0, id);
        assert!(uf.same(0, 1));
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut uf = UnionFind::new(6);
        uf.union(0, 1);
        uf.union(2, 3);
        uf.union(1, 3);
        for i in 0..4 {
            assert_eq!(uf.find_immutable(i), uf.find(i));
        }
    }

    #[test]
    fn compress_all_makes_every_parent_a_root() {
        let mut uf = UnionFind::new(64);
        for i in 0..63 {
            uf.union(i, i + 1);
        }
        uf.compress_all();
        let root = uf.find_immutable(0);
        for i in 0..64 {
            assert_eq!(uf.parent[i] as usize, root);
        }
    }

    #[test]
    fn long_chain_compresses() {
        let mut uf = UnionFind::new(1000);
        for i in 0..999 {
            uf.union(i, i + 1);
        }
        assert_eq!(uf.class_count(), 1);
        assert_eq!(uf.find(0), uf.find(999));
    }
}
