//! A frozen, shareable snapshot of a congruence closure (`&self` reads).
//!
//! [`CongruenceClosure`] answers `Cl(R)` membership with `&mut self`: every
//! query interns its terms and compresses union-find paths, so a closure
//! cannot be shared across threads, and a read poisons the borrow of the
//! containing specification. Sealing the closure with
//! [`CongruenceClosure::freeze`] extracts a **class-transition DFA**: one
//! dense state per congruence class, with an `f`-edge from the class of `t`
//! to the class of `f(t)` wherever `f(t)` is interned. All union-find paths
//! are fully compressed at freeze time, so the snapshot answers every query
//! by pure table walks over immutable data.
//!
//! Queries about terms *outside* the interned universe reduce to walking the
//! DFA as far as it goes: a term whose path leaves the DFA after consuming a
//! prefix is canonically `(class, suffix)` — the class where the walk
//! stopped plus the unconsumed symbols. Two terms are congruent in the
//! lazily-extended closure iff their canonical pairs are equal (the fresh
//! nodes the mutable procedure would intern for equal suffixes from the same
//! class are identified one by one by the `step` hook; unequal suffixes or
//! classes create disjoint fresh singletons).

use fundb_term::{Func, FxHashMap, NodeId};

use crate::closure::CongruenceClosure;

/// The canonical form of a (possibly uninterned) term under a frozen
/// closure: the congruence class reached by the longest DFA-walkable prefix,
/// plus the length of that prefix. The unconsumed suffix `path[consumed..]`
/// completes the canonical pair.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Canon {
    /// Dense congruence-class index where the DFA walk stopped.
    pub class: u32,
    /// Number of leading path symbols consumed by the walk.
    pub consumed: usize,
}

/// Immutable congruence-closure snapshot: a class-transition DFA with O(1)
/// class lookup for interned terms. All methods take `&self`.
#[derive(Clone, Debug)]
pub struct FrozenClosure {
    /// Dense class of the root term `0`.
    root_class: u32,
    /// `delta[class]` maps a symbol `f` to the class of `f(class)`, for
    /// every `f` under which the class has an interned successor.
    delta: Vec<FxHashMap<Func, u32>>,
    /// Dense class of each interned term, by `NodeId` index.
    class_of_node: Vec<u32>,
}

impl FrozenClosure {
    /// Number of congruence classes among the interned terms.
    pub fn class_count(&self) -> usize {
        self.delta.len()
    }

    /// Number of interned terms covered by the snapshot.
    pub fn term_count(&self) -> usize {
        self.class_of_node.len()
    }

    /// Dense class of the root term `0`.
    pub fn root_class(&self) -> u32 {
        self.root_class
    }

    /// Dense class of an interned term. Panics if `n` was interned after
    /// the freeze.
    pub fn class_of(&self, n: NodeId) -> u32 {
        self.class_of_node[n.index()]
    }

    /// Canonicalizes a term given by its root-to-leaf symbol path: walks the
    /// class DFA until a transition is missing or the path ends. O(|path|)
    /// worst case, O(consumed) exactly; no allocation, no locks.
    pub fn canon_path(&self, path: &[Func]) -> Canon {
        let mut class = self.root_class;
        for (i, &f) in path.iter().enumerate() {
            match self.delta[class as usize].get(&f) {
                Some(&next) => class = next,
                None => {
                    return Canon { class, consumed: i };
                }
            }
        }
        Canon {
            class,
            consumed: path.len(),
        }
    }

    /// Whether `(a, b) ∈ Cl(R)`, with the same semantics as the mutable
    /// [`CongruenceClosure::congruent_paths`] (query terms outside the
    /// interned universe extend it with fresh nodes): true iff both walks
    /// stop in the same class with identical unconsumed suffixes.
    pub fn congruent_paths(&self, a: &[Func], b: &[Func]) -> bool {
        let ca = self.canon_path(a);
        let cb = self.canon_path(b);
        ca.class == cb.class && a[ca.consumed..] == b[cb.consumed..]
    }
}

impl CongruenceClosure {
    /// Seals the closure into an immutable, shareable snapshot. Fully
    /// compresses the union-find (so the one-off cost is paid here, not on
    /// the read path) and converts the per-class successor tables into a
    /// dense class-transition DFA.
    pub fn freeze(&mut self) -> FrozenClosure {
        let (uf, successors, nterms) = self.freeze_parts();
        uf.compress_all();
        // Dense renumbering of the surviving representatives, in id order.
        let mut dense: FxHashMap<usize, u32> = FxHashMap::default();
        let mut class_of_node = Vec::with_capacity(nterms);
        for n in 0..nterms {
            let rep = uf.find_immutable(n);
            let next = dense.len() as u32;
            let id = *dense.entry(rep).or_insert(next);
            class_of_node.push(id);
        }
        let mut delta = vec![FxHashMap::default(); dense.len()];
        for (rep, table) in successors {
            let class = dense[&uf.find_immutable(*rep)] as usize;
            for (&f, &n) in table {
                delta[class].insert(f, class_of_node[n.index()]);
            }
        }
        FrozenClosure {
            root_class: class_of_node[0],
            delta,
            class_of_node,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_term::Interner;

    fn symbols(n: usize) -> (Interner, Vec<Func>) {
        let mut i = Interner::new();
        let fs = (0..n)
            .map(|k| Func(i.intern(&format!("f{k}"))))
            .collect::<Vec<_>>();
        (i, fs)
    }

    /// Frozen answers match the mutable procedure on the §3.5 Even example,
    /// including terms far outside the interned universe.
    #[test]
    fn frozen_matches_mutable_on_even_example() {
        let (_, fs) = symbols(1);
        let s = fs[0];
        let mut cc = CongruenceClosure::new();
        cc.equate_paths(&[], &[s, s]); // 0 ≅ 2
        let frozen = cc.freeze();
        let nat = |n: usize| vec![s; n];
        for i in 0..10usize {
            for j in 0..10usize {
                let mut fresh = cc.clone();
                assert_eq!(
                    frozen.congruent_paths(&nat(i), &nat(j)),
                    fresh.congruent_paths(&nat(i), &nat(j)),
                    "i={i} j={j}"
                );
            }
        }
    }

    /// Uninterned queries with shared fresh suffixes from the same class are
    /// congruent; differing suffixes or source classes are not.
    #[test]
    fn fresh_suffix_semantics() {
        let (_, fs) = symbols(2);
        let (f, g) = (fs[0], fs[1]);
        let mut cc = CongruenceClosure::new();
        cc.equate_paths(&[], &[f]); // 0 ≅ f(0)
        let frozen = cc.freeze();
        // g is nowhere interned: g(f(0)) ≅ g(0) because f(0) ≅ 0.
        assert!(frozen.congruent_paths(&[f, g], &[g]));
        assert!(frozen.congruent_paths(&[f, f, g, g], &[g, g]));
        // Distinct fresh suffixes stay distinct.
        assert!(!frozen.congruent_paths(&[g], &[g, g]));
        assert!(!frozen.congruent_paths(&[g, f], &[g, g]));
    }

    /// Exhaustive agreement with the mutable closure over all short paths
    /// for an offset lasso (classes {0}, odds, positive evens).
    #[test]
    fn frozen_matches_mutable_exhaustively() {
        let (_, fs) = symbols(2);
        let (f, g) = (fs[0], fs[1]);
        let mut cc = CongruenceClosure::new();
        cc.equate_paths(&[f], &[f, f, f]); // 1 ≅ 3 in f-steps
        cc.equate_paths(&[g, g], &[g]); // g(g(0)) ≅ g(0)
        let frozen = cc.freeze();
        let paths: Vec<Vec<Func>> = (0..3usize.pow(4))
            .map(|mut k| {
                let mut p = Vec::new();
                for _ in 0..4 {
                    match k % 3 {
                        0 => {}
                        1 => p.push(f),
                        _ => p.push(g),
                    }
                    k /= 3;
                }
                p
            })
            .collect();
        for a in &paths {
            for b in &paths {
                let mut fresh = cc.clone();
                assert_eq!(
                    frozen.congruent_paths(a, b),
                    fresh.congruent_paths(a, b),
                    "a={a:?} b={b:?}"
                );
            }
        }
    }

    /// Canonical classes of interned terms agree with the mutable find.
    #[test]
    fn class_of_is_consistent_with_canon() {
        let (_, fs) = symbols(1);
        let s = fs[0];
        let mut cc = CongruenceClosure::new();
        let n3 = cc.term(&[s, s, s]);
        cc.equate_paths(&[], &[s, s, s]);
        let frozen = cc.freeze();
        let c = frozen.canon_path(&[s, s, s]);
        assert_eq!(c.consumed, 3);
        assert_eq!(c.class, frozen.class_of(n3));
        assert_eq!(frozen.class_of(n3), frozen.root_class());
    }
}
