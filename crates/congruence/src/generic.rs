//! Congruence closure over arbitrary ground terms (the full [DST80] /
//! Nelson–Oppen procedure).
//!
//! The paper's equational specifications only ever need the unary instance
//! ([`crate::CongruenceClosure`]) because the mixed→pure transformation
//! (§2.4) eliminates k-ary function symbols before specification. This
//! module provides the general procedure over hash-consed k-ary ground
//! terms — the substrate [DST80] actually describes — so the library also
//! covers equational reasoning *before* the transformation (e.g. deciding
//! `ext(s,a)`-level consequences directly) and serves as an oracle for the
//! unary implementation.
//!
//! Algorithm: classic use-list congruence closure. Each class keeps the
//! list of parent terms; a signature table maps `(symbol, class-ids of
//! children)` to a canonical term. Merging two classes re-signs the smaller
//! use list and merges on signature collision, giving the usual
//! O(n² α(n)) worst case (n merges each re-signing ≤ n parents).

use crate::unionfind::UnionFind;
use fundb_term::{FxHashMap, Sym};

/// A hash-consed ground term.
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct TermId(u32);

impl TermId {
    /// Dense index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Congruence closure over k-ary ground terms.
#[derive(Clone, Default)]
pub struct GenCongruence {
    /// Hash-consed term table: symbol + children.
    terms: Vec<(Sym, Vec<TermId>)>,
    cons: FxHashMap<(Sym, Vec<TermId>), TermId>,
    uf: UnionFind,
    /// Per class representative: parent terms whose signature mentions the
    /// class.
    parents: FxHashMap<usize, Vec<TermId>>,
    /// Signature table: (symbol, children class reps) → canonical term.
    sigs: FxHashMap<(Sym, Vec<usize>), TermId>,
}

impl GenCongruence {
    /// Creates an empty structure.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of hash-consed terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Number of congruence classes among the interned terms.
    pub fn class_count(&self) -> usize {
        self.uf.class_count()
    }

    /// Interns the term `sym(children…)` (a constant when `children` is
    /// empty), keeping the congruence invariant.
    pub fn term(&mut self, sym: Sym, children: &[TermId]) -> TermId {
        if let Some(&t) = self.cons.get(&(sym, children.to_vec())) {
            return t;
        }
        let id = TermId(u32::try_from(self.terms.len()).expect("term overflow"));
        self.terms.push((sym, children.to_vec()));
        self.cons.insert((sym, children.to_vec()), id);
        let uf_id = self.uf.push();
        debug_assert_eq!(uf_id, id.index());
        // Register as a parent of each child's class.
        for &c in children {
            let rep = self.uf.find(c.index());
            self.parents.entry(rep).or_default().push(id);
        }
        // Signature: merge with an existing congruent term if any.
        let sig = self.signature(id);
        match self.sigs.get(&sig) {
            Some(&canon) => self.merge(id, canon),
            None => {
                self.sigs.insert(sig, id);
            }
        }
        id
    }

    fn signature(&mut self, t: TermId) -> (Sym, Vec<usize>) {
        let (sym, children) = self.terms[t.index()].clone();
        (
            sym,
            children.iter().map(|c| self.uf.find(c.index())).collect(),
        )
    }

    /// Asserts `a = b` and restores congruence.
    pub fn merge(&mut self, a: TermId, b: TermId) {
        let mut pending = vec![(a, b)];
        while let Some((x, y)) = pending.pop() {
            let (rx, ry) = (self.uf.find(x.index()), self.uf.find(y.index()));
            if rx == ry {
                continue;
            }
            let winner = self.uf.union(rx, ry).expect("distinct classes");
            // The absorbed root's id vanishes from current signatures, so
            // every parent that mentioned it must be re-signed — collisions
            // are congruence consequences.
            let loser = if winner == rx { ry } else { rx };
            let moved = self.parents.remove(&loser).unwrap_or_default();
            for p in &moved {
                let sig = self.signature(*p);
                match self.sigs.get(&sig) {
                    Some(&q) if self.uf.find(q.index()) != self.uf.find(p.index()) => {
                        pending.push((*p, q));
                    }
                    Some(_) => {}
                    None => {
                        self.sigs.insert(sig, *p);
                    }
                }
            }
            self.parents.entry(winner).or_default().extend(moved);
        }
    }

    /// Whether `a` and `b` are congruent under the asserted equations.
    pub fn congruent(&mut self, a: TermId, b: TermId) -> bool {
        self.uf.same(a.index(), b.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_term::Interner;

    struct Ctx {
        i: Interner,
        cc: GenCongruence,
    }

    impl Ctx {
        fn new() -> Self {
            Ctx {
                i: Interner::new(),
                cc: GenCongruence::new(),
            }
        }
        fn cst(&mut self, name: &str) -> TermId {
            let s = self.i.intern(name);
            self.cc.term(s, &[])
        }
        fn app(&mut self, name: &str, children: &[TermId]) -> TermId {
            let s = self.i.intern(name);
            self.cc.term(s, children)
        }
    }

    /// The classic Nelson–Oppen example: f(a,b) = a ⊢ f(f(a,b),b) = a.
    #[test]
    fn nelson_oppen_example() {
        let mut c = Ctx::new();
        let a = c.cst("a");
        let b = c.cst("b");
        let fab = c.app("f", &[a, b]);
        let ffab_b = c.app("f", &[fab, b]);
        assert!(!c.cc.congruent(ffab_b, a));
        c.cc.merge(fab, a);
        assert!(c.cc.congruent(fab, a));
        assert!(c.cc.congruent(ffab_b, a), "f(f(a,b),b) ≅ a by congruence");
    }

    /// g(x) for congruent x collapses even when interned later.
    #[test]
    fn late_terms_are_identified() {
        let mut c = Ctx::new();
        let a = c.cst("a");
        let b = c.cst("b");
        c.cc.merge(a, b);
        let ga = c.app("g", &[a]);
        let gb = c.app("g", &[b]);
        assert!(c.cc.congruent(ga, gb));
        // Deeper, mixed arities.
        let h1 = c.app("h", &[ga, a]);
        let h2 = c.app("h", &[gb, b]);
        assert!(c.cc.congruent(h1, h2));
    }

    /// Transitivity across chained merges of applications.
    #[test]
    fn transitive_chains() {
        let mut c = Ctx::new();
        let a = c.cst("a");
        let b = c.cst("b");
        let d = c.cst("d");
        let fa = c.app("f", &[a]);
        let fb = c.app("f", &[b]);
        let fd = c.app("f", &[d]);
        c.cc.merge(a, b);
        c.cc.merge(b, d);
        assert!(c.cc.congruent(fa, fd));
        assert!(c.cc.congruent(fb, fd));
    }

    /// Distinct symbols never merge without equations.
    #[test]
    fn no_spurious_merges() {
        let mut c = Ctx::new();
        let a = c.cst("a");
        let b = c.cst("b");
        let fa = c.app("f", &[a]);
        let ga = c.app("g", &[a]);
        assert!(!c.cc.congruent(a, b));
        assert!(!c.cc.congruent(fa, ga));
        assert_eq!(c.cc.class_count(), 4);
    }

    /// Hash-consing: identical terms get identical ids.
    #[test]
    fn hash_consing() {
        let mut c = Ctx::new();
        let a = c.cst("a");
        let f1 = c.app("f", &[a, a]);
        let f2 = c.app("f", &[a, a]);
        assert_eq!(f1, f2);
        assert_eq!(c.cc.term_count(), 2);
    }

    /// Agreement with the unary implementation on unary inputs.
    #[test]
    fn agrees_with_unary_closure() {
        use crate::CongruenceClosure;
        use fundb_term::Func;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};

        for seed in 0..20u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut i = Interner::new();
            let f0 = Func(i.intern("f0"));
            let f1 = Func(i.intern("f1"));
            let zero = i.intern("0");
            let funcs = [f0, f1];

            let mut unary = CongruenceClosure::new();
            let mut general = GenCongruence::new();

            // Random term set.
            let paths: Vec<Vec<Func>> = (0..8)
                .map(|_| {
                    let len = rng.gen_range(0..5usize);
                    (0..len).map(|_| funcs[rng.gen_range(0..2)]).collect()
                })
                .collect();
            let as_general = |g: &mut GenCongruence, path: &[Func]| {
                let mut t = g.term(zero, &[]);
                for f in path {
                    t = g.term(f.sym(), &[t]);
                }
                t
            };
            // Random equations applied to both.
            for _ in 0..3 {
                let a = paths[rng.gen_range(0..paths.len())].clone();
                let b = paths[rng.gen_range(0..paths.len())].clone();
                unary.equate_paths(&a, &b);
                let (ta, tb) = (as_general(&mut general, &a), as_general(&mut general, &b));
                general.merge(ta, tb);
            }
            // All pairs agree.
            for a in &paths {
                for b in &paths {
                    let u = unary.congruent_paths(a, b);
                    let (ta, tb) = (as_general(&mut general, a), as_general(&mut general, b));
                    let g = general.congruent(ta, tb);
                    assert_eq!(u, g, "seed {seed}: {a:?} vs {b:?}");
                }
            }
        }
    }
}
