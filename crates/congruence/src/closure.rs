//! The congruence closure decision procedure for `Cl(R)` membership (§3.5).
//!
//! All terms here are ground pure functional terms, i.e. chains of unary
//! function symbols over the functional constant `0`. The structure
//! maintains, incrementally, the finest congruence containing a set of
//! asserted equations: whenever two classes merge, their `f`-successors (for
//! every symbol `f` under which either class already has an interned
//! successor) are merged too, and whenever a new term `f(t)` is interned it
//! is immediately identified with the existing `f`-successor of `t`'s class,
//! if any.
//!
//! This is the unary-signature instance of the Downey–Sethi–Tarjan procedure
//! [DST80]: signatures `(f, find(t))` are kept unique via the per-class
//! successor tables.

use fundb_term::{Func, FxHashMap, Interner, NodeId, TermTree};

use crate::unionfind::UnionFind;

/// Incremental congruence closure over ground unary terms.
///
/// ```
/// use fundb_congruence::CongruenceClosure;
/// use fundb_term::{Func, Interner};
///
/// let mut i = Interner::new();
/// let s = Func(i.intern("+1"));
/// let mut cc = CongruenceClosure::new();
/// cc.equate_paths(&[], &[s, s]);                     // 0 ≅ 2 (the §3.5 Even example)
/// assert!(cc.congruent_paths(&[s; 4], &[]));         // (0,4) ∈ Cl(R)
/// assert!(!cc.congruent_paths(&[s; 3], &[]));        // (0,3) ∉ Cl(R)
/// ```
#[derive(Clone, Default)]
pub struct CongruenceClosure {
    tree: TermTree,
    uf: UnionFind,
    /// For each class representative (by union-find id), the interned
    /// `f`-successors of the class. Invariant: at most one entry per symbol,
    /// and the entry's class is the congruence class of `f(class)`.
    successors: FxHashMap<usize, FxHashMap<Func, NodeId>>,
}

impl CongruenceClosure {
    /// Creates a closure containing only the term `0` and no equations.
    pub fn new() -> Self {
        let tree = TermTree::new();
        let uf = UnionFind::new(1);
        CongruenceClosure {
            tree,
            uf,
            successors: FxHashMap::default(),
        }
    }

    /// The term `0`.
    pub fn root(&self) -> NodeId {
        self.tree.root()
    }

    /// Number of interned terms (the finite universe the procedure examines).
    pub fn term_count(&self) -> usize {
        self.tree.len()
    }

    /// Number of congruence classes among the interned terms.
    pub fn class_count(&self) -> usize {
        self.uf.class_count()
    }

    /// Interns the term given by its root-to-leaf symbol path (innermost
    /// application first) and returns its node, keeping the congruence
    /// invariant.
    pub fn term(&mut self, path: &[Func]) -> NodeId {
        let mut cur = self.tree.root();
        for &f in path {
            cur = self.step(cur, f);
        }
        cur
    }

    /// Interns the term `f(t)`.
    pub fn apply(&mut self, t: NodeId, f: Func) -> NodeId {
        self.step(t, f)
    }

    /// Asserts the equation `a = b` and restores congruence.
    pub fn merge(&mut self, a: NodeId, b: NodeId) {
        let mut pending = vec![(a, b)];
        while let Some((x, y)) = pending.pop() {
            let (rx, ry) = (self.uf.find(x.index()), self.uf.find(y.index()));
            if rx == ry {
                continue;
            }
            let winner = self
                .uf
                .union(rx, ry)
                .expect("distinct representatives must merge");
            let loser = if winner == rx { ry } else { rx };
            // Fold the loser's successor table into the winner's; collisions
            // on the same symbol are congruence consequences.
            if let Some(moved) = self.successors.remove(&loser) {
                let into = self.successors.entry(winner).or_default();
                let mut clashes = Vec::new();
                for (f, n) in moved {
                    match into.get(&f) {
                        Some(&existing) if existing != n => clashes.push((existing, n)),
                        Some(_) => {}
                        None => {
                            into.insert(f, n);
                        }
                    }
                }
                pending.extend(clashes);
            }
        }
    }

    /// Asserts an equation between two terms given as paths.
    pub fn equate_paths(&mut self, a: &[Func], b: &[Func]) {
        let na = self.term(a);
        let nb = self.term(b);
        self.merge(na, nb);
    }

    /// Whether `(a, b) ∈ Cl(R)` for the equations asserted so far.
    pub fn congruent(&mut self, a: NodeId, b: NodeId) -> bool {
        self.uf.same(a.index(), b.index())
    }

    /// Path-based variant of [`CongruenceClosure::congruent`]; interns the
    /// query terms first (extending the examined universe, as the membership
    /// test of §3.5 requires).
    pub fn congruent_paths(&mut self, a: &[Func], b: &[Func]) -> bool {
        let na = self.term(a);
        let nb = self.term(b);
        self.congruent(na, nb)
    }

    /// The class representative id of a term (stable until the next merge).
    pub fn class_of(&mut self, n: NodeId) -> usize {
        self.uf.find(n.index())
    }

    /// Renders a term for diagnostics.
    pub fn display_term<'a>(
        &'a self,
        n: NodeId,
        interner: &'a Interner,
    ) -> fundb_term::tree::TermDisplay<'a> {
        self.tree.display(n, interner)
    }

    /// Split-borrows the pieces [`CongruenceClosure::freeze`] needs: the
    /// union-find (mutably, for one final full compression), the per-class
    /// successor tables, and the interned term count.
    pub(crate) fn freeze_parts(
        &mut self,
    ) -> (
        &mut UnionFind,
        &FxHashMap<usize, FxHashMap<Func, NodeId>>,
        usize,
    ) {
        let nterms = self.tree.len();
        (&mut self.uf, &self.successors, nterms)
    }

    /// Interns `f(t)`, identifying the fresh node with the class's existing
    /// `f`-successor when there is one.
    fn step(&mut self, t: NodeId, f: Func) -> NodeId {
        if let Some(existing) = self.tree.get_child(t, f) {
            return existing;
        }
        let node = self.tree.child(t, f);
        debug_assert_eq!(node.index(), self.uf.len());
        self.uf.push();
        let class = self.uf.find(t.index());
        let table = self.successors.entry(class).or_default();
        match table.get(&f) {
            Some(&canon) => {
                // Congruence: t ≅ t' and f(t') already interned ⇒ f(t) ≅ f(t').
                self.merge(node, canon);
            }
            None => {
                table.insert(f, node);
            }
        }
        node
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn symbols(n: usize) -> (Interner, Vec<Func>) {
        let mut i = Interner::new();
        let fs = (0..n)
            .map(|k| Func(i.intern(&format!("f{k}"))))
            .collect::<Vec<_>>();
        (i, fs)
    }

    /// The paper's §3.5 example: D = {Even(0)}, rule Even(t) → Even(t+2),
    /// R = {(0, 2)}. Then (0, 4) ∈ Cl(R), (1, 3) ∈ Cl(R), (0, 3) ∉ Cl(R).
    #[test]
    fn even_example_from_section_3_5() {
        let (_, fs) = symbols(1);
        let s = fs[0]; // +1
        let mut cc = CongruenceClosure::new();
        cc.equate_paths(&[], &[s, s]); // 0 ≅ 2
        let nat = |n: usize| vec![s; n];
        assert!(cc.congruent_paths(&nat(0), &nat(4)));
        assert!(cc.congruent_paths(&nat(1), &nat(3)));
        assert!(cc.congruent_paths(&nat(2), &nat(6)));
        assert!(!cc.congruent_paths(&nat(0), &nat(3)));
        assert!(!cc.congruent_paths(&nat(1), &nat(4)));
    }

    #[test]
    fn congruence_propagates_through_existing_successors() {
        // R = {(0, f(0))}; then g(f(0)) ≅ g(0) by congruence.
        let (_, fs) = symbols(2);
        let (f, g) = (fs[0], fs[1]);
        let mut cc = CongruenceClosure::new();
        let gf0 = cc.term(&[f, g]);
        let g0 = cc.term(&[g]);
        cc.equate_paths(&[], &[f]);
        assert!(cc.congruent(gf0, g0));
    }

    #[test]
    fn late_interning_still_sees_congruence() {
        // Same as above but the query terms are interned *after* the merge;
        // the step() hook must identify them.
        let (_, fs) = symbols(2);
        let (f, g) = (fs[0], fs[1]);
        let mut cc = CongruenceClosure::new();
        cc.equate_paths(&[], &[f]);
        assert!(cc.congruent_paths(&[f, g], &[g]));
        // And deeper: g(f(f(0))) ≅ g(0) since f(f(0)) ≅ f(0) ≅ 0.
        assert!(cc.congruent_paths(&[f, f, g], &[g]));
    }

    #[test]
    fn distinct_symbols_stay_distinct() {
        let (_, fs) = symbols(2);
        let (f, g) = (fs[0], fs[1]);
        let mut cc = CongruenceClosure::new();
        assert!(!cc.congruent_paths(&[f], &[g]));
        assert!(!cc.congruent_paths(&[], &[f]));
    }

    #[test]
    fn transitivity_and_symmetry() {
        let (_, fs) = symbols(3);
        let (f, g, h) = (fs[0], fs[1], fs[2]);
        let mut cc = CongruenceClosure::new();
        cc.equate_paths(&[f], &[g]);
        cc.equate_paths(&[g], &[h]);
        assert!(cc.congruent_paths(&[h], &[f]));
    }

    #[test]
    fn merge_is_idempotent() {
        let (_, fs) = symbols(1);
        let f = fs[0];
        let mut cc = CongruenceClosure::new();
        cc.equate_paths(&[], &[f]);
        let before = cc.class_count();
        cc.equate_paths(&[], &[f]);
        assert_eq!(cc.class_count(), before);
    }

    #[test]
    fn collapse_to_single_class() {
        // 0 ≅ f(0) and 0 ≅ g(0) collapse every term over {f, g} into one
        // class.
        let (_, fs) = symbols(2);
        let (f, g) = (fs[0], fs[1]);
        let mut cc = CongruenceClosure::new();
        cc.equate_paths(&[], &[f]);
        cc.equate_paths(&[], &[g]);
        assert!(cc.congruent_paths(&[f, g, f, g], &[g, g]));
        assert!(cc.congruent_paths(&[f, f, f], &[]));
    }

    #[test]
    fn period_three_cycle() {
        // 0 ≅ 3 (unary s). Classes mod 3.
        let (_, fs) = symbols(1);
        let s = fs[0];
        let mut cc = CongruenceClosure::new();
        let nat = |n: usize| vec![s; n];
        cc.equate_paths(&nat(0), &nat(3));
        for i in 0..12usize {
            for j in 0..12usize {
                assert_eq!(
                    cc.congruent_paths(&nat(i), &nat(j)),
                    i % 3 == j % 3,
                    "i={i} j={j}"
                );
            }
        }
    }

    #[test]
    fn offset_lasso() {
        // 1 ≅ 3: classes {0}, {1,3,5,...}, {2,4,6,...}.
        let (_, fs) = symbols(1);
        let s = fs[0];
        let mut cc = CongruenceClosure::new();
        let nat = |n: usize| vec![s; n];
        cc.equate_paths(&nat(1), &nat(3));
        assert!(!cc.congruent_paths(&nat(0), &nat(2)));
        assert!(cc.congruent_paths(&nat(1), &nat(5)));
        assert!(cc.congruent_paths(&nat(2), &nat(4)));
        assert!(!cc.congruent_paths(&nat(1), &nat(2)));
    }
}
