#![warn(missing_docs)]
//! Union-find and congruence closure over ground functional terms.
//!
//! The equational specification of §3.5 represents the state congruence `≅`
//! of an infinite least fixpoint as the congruence closure `Cl(R)` of a
//! finite set of ground equations `R`:
//!
//! * initialization: `R(t, t') ⇒ (t, t') ∈ Cl(R)`,
//! * reflexivity, symmetry, transitivity,
//! * congruence: `(t, t') ∈ Cl(R) ⇒ (f(t), f(t')) ∈ Cl(R)` for every pure
//!   function symbol `f`.
//!
//! `Cl(R)` is infinite, but a membership test `(t₀, t) ∈ Cl(R)` "needs to
//! examine only finitely many terms, because of the finiteness of B and R"
//! (§3.5): the classical congruence-closure decision procedure for ground
//! equational theories (Downey, Sethi & Tarjan, *Variations on the common
//! subexpression problem*, JACM 1980 — the paper's [DST80]) runs over the
//! subterm closure of `R` plus the query terms. Since every ground pure
//! functional term is a chain of unary symbols over the constant `0`, the
//! subterm closure is a prefix-closed set of paths — a trie — and the
//! procedure below is the unary instance of DST.

pub mod closure;
pub mod frozen;
pub mod generic;
pub mod unionfind;

pub use closure::CongruenceClosure;
pub use frozen::{Canon, FrozenClosure};
pub use generic::{GenCongruence, TermId};
pub use unionfind::UnionFind;
