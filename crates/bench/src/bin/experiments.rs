//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p fundb-bench --bin experiments [e1 … e10 | all]`
//!
//! Each experiment prints a small table comparing the paper's claim with
//! what this implementation measures. Absolute times are machine-dependent;
//! the *shapes* (who wins, growth orders, crossovers) are the reproduction
//! targets.

use fundb_bench::{binary_counter, ring_planner, rotation, subset_lists};
use fundb_core::{
    analysis, normalize, to_pure, BoundedMaterialization, CongrForm, DataParams, Engine, EqSpec,
    Query,
};
use fundb_parser::Workspace;
use fundb_temporal::TemporalSpec;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    println!("fundb experiment harness — paper: Chomicki & Imieliński, SIGMOD 1989");
    println!("(run with --release for meaningful timings)\n");

    if want("e1") {
        e1_lists_worked_example();
    }
    if want("e2") {
        e2_meets();
    }
    if want("e3") {
        e3_even();
    }
    if want("e4") {
        e4_yesno_complexity();
    }
    if want("e5") {
        e5_graphspec_size();
    }
    if want("e6") {
        e6_eqspec();
    }
    if want("e7") {
        e7_scope_bounds();
    }
    if want("e8") {
        e8_incremental_queries();
    }
    if want("e9") {
        e9_baseline_crossover();
    }
    if want("e10") {
        e10_congr();
    }
}

fn banner(id: &str, title: &str, claim: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("paper: {claim}");
    println!("--------------------------------------------------------------");
}

/// E1 — §3.4 worked example (the output of Figure 1).
fn e1_lists_worked_example() {
    banner(
        "E1",
        "Algorithm Q on the §3.4 list example",
        "representatives 0, a, b, ab; slices L[a]={Member(a,a)}, …; \
         successors f_a(a)=a, f_b(a)=ab, …",
    );
    let mut ws = subset_lists(2);
    let spec = ws.graph_spec().unwrap();
    let min = spec.minimized();
    println!(
        "Algorithm Q: {} clusters ({} active); after minimization: {} (paper: 4)",
        spec.cluster_count(),
        spec.active_count,
        min.cluster_count()
    );
    print!("{}", min.render(&ws.interner));
    println!();
}

/// E2 — the §1 introductory example.
fn e2_meets() {
    banner(
        "E2",
        "Meets/Next advisor rotation (§1)",
        "two congruence classes {0,2,4,…} and {1,3,5,…}; primary database \
         Meets(0,Tony), Meets(1,Jan); f(0)=1, f(1)=0; R = {(0,2)}",
    );
    let mut ws = rotation(2);
    let spec = ws.graph_spec().unwrap().minimized();
    println!("clusters: {} (paper: 2)", spec.cluster_count());
    print!("{}", spec.render(&ws.interner));
    let t = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
    println!(
        "temporal equation R = {{({}, {})}} (paper: (0,2))\n",
        t.equation().0,
        t.equation().1
    );
}

/// E3 — the §3.5 Even example with its membership tests.
fn e3_even() {
    banner(
        "E3",
        "Equational specification on Even (§3.5)",
        "B = D, R = {(0,2)}; Even(4) ∈ L via (0,4) ∈ Cl(R); Even(3) ∉ L",
    );
    let mut ws = Workspace::new();
    ws.parse("Even(t) -> Even(t+2).\nEven(0).").unwrap();
    let t = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
    println!(
        "temporal spec: ρ={}, λ={}, R = {{({},{})}}, |B| = {}",
        t.rho(),
        t.lambda(),
        t.equation().0,
        t.equation().1,
        t.primary_size()
    );
    let mut eq = ws.eq_spec().unwrap();
    for (fact, expected) in [("Even(4)", true), ("Even(3)", false), ("Even(100)", true)] {
        let got = ws.holds_eq(&mut eq, fact).unwrap();
        println!("{fact:>10} -> {got} (paper: {expected})");
        assert_eq!(got, expected);
    }
    println!();
}

/// E4 — Theorem 4.1: temporal vs general engine cost on the same inputs.
fn e4_yesno_complexity() {
    banner(
        "E4",
        "Yes-no query processing cost (Theorem 4.1)",
        "PSPACE-complete for temporal rules vs DEXPTIME-complete for \
         functional rules: the temporal evaluator should win clearly, and \
         the adversarial family should grow exponentially for both",
    );
    println!(
        "{:>22} {:>12} {:>14} {:>14} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "workload",
        "lasso/spec",
        "temporal (ms)",
        "general (ms)",
        "passes",
        "memo",
        "delta",
        "probes",
        "idx hits"
    );
    for (name, mut ws) in [
        ("rotation(8)", rotation(8)),
        ("rotation(64)", rotation(64)),
        ("counter(4)", binary_counter(4)),
        ("counter(6)", binary_counter(6)),
        ("counter(8)", binary_counter(8)),
    ] {
        let t0 = Instant::now();
        let tspec = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
        let temporal_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let mut engine = Engine::build(&ws.program, &ws.db, &mut ws.interner).unwrap();
        engine.solve();
        let general_ms = t1.elapsed().as_secs_f64() * 1e3;
        let stats = engine.stats();
        println!(
            "{:>22} {:>12} {:>14.2} {:>14.2} {:>8} {:>8} {:>8} {:>10} {:>10}",
            name,
            tspec.lambda(),
            temporal_ms,
            general_ms,
            stats.passes,
            engine.memo_len(),
            stats.delta_atoms,
            stats.join_probes,
            stats.index_hits
        );
        // The final pass only verifies the fixpoint: it must absorb nothing.
        assert_eq!(stats.pass_deltas.last(), Some(&0));
    }
    println!(
        "expected shape: temporal wins on plain lassos, the semi-naive general \
         engine on wide states; counter column doubles per bit; \
         the last pass delta is always 0 (semi-naive verification pass)\n"
    );
}

/// E5 — Theorem 4.2: graph specification size and construction time.
fn e5_graphspec_size() {
    banner(
        "E5",
        "Graph specification size (Theorem 4.2)",
        "computable in DEXPTIME; upper AND lower bounds on the size are \
         exponential — benign families stay linear, adversarial families \
         must blow up",
    );
    println!(
        "{:>18} {:>10} {:>10} {:>10} {:>12}",
        "workload", "db size", "clusters", "|B|", "build (ms)"
    );
    let mut rows: Vec<(String, usize)> = Vec::new();
    for k in [4usize, 8, 16, 32] {
        let mut ws = rotation(k);
        let t0 = Instant::now();
        let spec = ws.graph_spec().unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>18} {:>10} {:>10} {:>10} {:>12.2}",
            format!("rotation({k})"),
            k + 1,
            spec.cluster_count(),
            spec.primary_size(),
            ms
        );
        rows.push((format!("rotation({k})"), spec.cluster_count()));
    }
    for n in [2usize, 3, 4, 5] {
        let mut ws = subset_lists(n);
        let t0 = Instant::now();
        let spec = ws.graph_spec().unwrap().minimized();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>18} {:>10} {:>10} {:>10} {:>12.2}",
            format!("subset_lists({n})"),
            n,
            spec.cluster_count(),
            spec.primary_size(),
            ms
        );
        rows.push((format!("subset_lists({n})"), spec.cluster_count()));
    }
    println!("expected shape: rotation linear in k; subset_lists ≈ 2^n in the DB size\n");
}

/// E6 — Theorem 4.3: equational vs graph specification sizes.
fn e6_eqspec() {
    banner(
        "E6",
        "Equational specification size (Theorem 4.3)",
        "double-exponential in general, single-exponential for temporal \
         rules; for temporal rules R is a single pair while B may be large",
    );
    println!(
        "{:>18} {:>10} {:>10} {:>10} {:>10}",
        "workload", "clusters", "|B|", "|R|", "|R| temporal"
    );
    for (name, mut ws, temporal) in [
        ("rotation(12)", rotation(12), true),
        ("counter(5)", binary_counter(5), true),
        ("subset_lists(4)", subset_lists(4), false),
        ("ring_planner(6)", ring_planner(6), false),
    ] {
        let spec = ws.graph_spec().unwrap();
        let eq = EqSpec::from_graph(&spec);
        let tr = if temporal {
            let t = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
            format!("1 pair ({} , {})", t.equation().0, t.equation().1)
        } else {
            "n/a".to_string()
        };
        println!(
            "{:>18} {:>10} {:>10} {:>10} {:>10}",
            name,
            spec.cluster_count(),
            eq.primary_size(),
            eq.equation_count(),
            tr
        );
    }
    println!(
        "expected shape: temporal |R| collapses to one pair; general |R| grows with m·clusters\n"
    );
}

/// E7 — Lemma 3.2: measured congruence scope vs the bound 1 + m·s·2^gsize.
fn e7_scope_bounds() {
    banner(
        "E7",
        "Congruence scope vs the Lemma 3.2 bound",
        "scope≅(L) ≤ 1 + m·s·2^gsize (and scope∼ ≤ 2^gsize)",
    );
    println!(
        "{:>18} {:>10} {:>14} {:>22}",
        "workload", "clusters", "distinct states", "bound 1+m·s·2^gsize"
    );
    for (name, mut ws) in [
        ("rotation(6)", rotation(6)),
        ("counter(4)", binary_counter(4)),
        ("subset_lists(3)", subset_lists(3)),
        ("ring_planner(4)", ring_planner(4)),
    ] {
        let normal = normalize(&ws.program, &mut ws.interner);
        let pure = to_pure(&normal, &ws.db, &mut ws.interner).unwrap();
        let params = DataParams::of(&pure.schema);
        let spec = ws.graph_spec().unwrap();
        let mut states: Vec<_> = spec.nodes.iter().map(|n| n.state.clone()).collect();
        states.sort_by_key(|s| s.iter().map(|a| a.index()).collect::<Vec<_>>());
        states.dedup();
        let bound = params.congruence_scope_bound();
        let bound_str = if bound == u128::MAX {
            ">= 2^127".to_string()
        } else {
            bound.to_string()
        };
        println!(
            "{:>18} {:>10} {:>14} {:>22}",
            name,
            spec.cluster_count(),
            states.len(),
            bound_str
        );
        assert!(
            bound == u128::MAX || (spec.cluster_count() as u128) <= bound,
            "Lemma 3.2 violated on {name}"
        );
    }
    println!("expected shape: measured scope far below the worst-case bound, never above\n");
}

/// E8 — Theorem 5.1: incremental vs full-recompute query answering.
fn e8_incremental_queries() {
    banner(
        "E8",
        "Incremental query answering (Theorem 5.1)",
        "uniform queries have incremental specifications (Q(B), F): no \
         recomputation of the fixpoint specification is needed",
    );
    println!(
        "{:>18} {:>16} {:>18}",
        "workload", "incremental (ms)", "by extension (ms)"
    );
    for (name, mut ws) in [
        ("rotation(16)", rotation(16)),
        ("counter(6)", binary_counter(6)),
        ("subset_lists(4)", subset_lists(4)),
    ] {
        let spec = ws.graph_spec().unwrap();
        // The canonical uniform query {(s, x̄) : P(s, x̄)} over the first
        // functional predicate.
        let q = first_functional_query(&mut ws);
        let t0 = Instant::now();
        let _inc = q.answer_incremental(&spec, &ws.interner).unwrap();
        let inc_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let _ext = q
            .answer_by_extension(&ws.program, &ws.db, &mut ws.interner)
            .unwrap();
        let ext_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!("{name:>18} {inc_ms:>16.2} {ext_ms:>18.2}");
    }
    println!("expected shape: incremental orders of magnitude cheaper\n");
}

fn first_functional_query(ws: &mut Workspace) -> Query {
    use fundb_core::program::{Atom, FTerm, NTerm};
    // Find a functional atom in some rule head.
    let (pred, extra) = ws
        .program
        .rules
        .iter()
        .find_map(|r| r.head.fterm().map(|_| (r.head.pred(), r.head.args().len())))
        .expect("workloads have functional predicates");
    let s = fundb_term::Var(ws.interner.intern("q_s"));
    let xs: Vec<fundb_term::Var> = (0..extra)
        .map(|i| fundb_term::Var(ws.interner.intern(&format!("q_x{i}"))))
        .collect();
    Query {
        out_fvar: Some(s),
        out_nvars: xs.clone(),
        body: vec![Atom::Functional {
            pred,
            fterm: FTerm::Var(s),
            args: xs.into_iter().map(NTerm::Var).collect(),
        }],
    }
}

/// E9 — the [RBS87] baseline: bounded materialization diverges; the
/// relational specification stays constant and answers any horizon.
fn e9_baseline_crossover() {
    banner(
        "E9",
        "Relational specification vs bounded materialization ([RBS87])",
        "a conventional engine materializes a horizon that grows without \
         bound; the relational specification is finite and complete",
    );
    let mut ws = rotation(6);
    let normal = normalize(&ws.program, &mut ws.interner);
    let pure = to_pure(&normal, &ws.db, &mut ws.interner).unwrap();
    println!(
        "{:>12} {:>14} {:>14} {:>16}",
        "horizon", "naive facts", "naive (ms)", "spec tuples (ms)"
    );
    let t0 = Instant::now();
    let spec = ws.graph_spec().unwrap();
    let spec_ms = t0.elapsed().as_secs_f64() * 1e3;
    for depth in [8usize, 32, 128, 512] {
        let t1 = Instant::now();
        let mat = BoundedMaterialization::run(&pure, depth, &mut ws.interner);
        let ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>12} {:>14} {:>14.2} {:>16}",
            depth,
            mat.fact_count(),
            ms,
            format!("{} ({spec_ms:.2})", spec.primary_size()),
        );
    }
    let report = analysis::analyze(&spec);
    println!(
        "fixpoint finite? {} — the naive column would grow forever; the spec answers day 10^12 in O(1)\n",
        report.finite
    );
}

/// E10 — §3.6: the CONGR canonical form reproduces the fixpoint.
fn e10_congr() {
    banner(
        "E10",
        "CONGR canonical form (§3.6)",
        "LFP(Z, D) = LFP(CONGR, B ∪ R); CONGR depends only on the predicate \
         vocabulary",
    );
    let mut ws = rotation(3);
    let spec = ws.graph_spec().unwrap();
    let eq = EqSpec::from_graph(&spec);
    let t0 = Instant::now();
    let congr = CongrForm::build(&eq, 12, &mut ws.interner);
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let meets = fundb_term::Pred(ws.interner.get("Meets").unwrap());
    let plus1 = fundb_term::Func(ws.interner.get("+1").unwrap());
    let mut agree = 0usize;
    let mut total = 0usize;
    for n in 0..=12usize {
        for i in 0..3usize {
            let c = fundb_term::Cst(ws.interner.get(&format!("S{i}")).unwrap());
            total += 1;
            if congr.holds(meets, &vec![plus1; n], &[c]) == spec.holds(meets, &vec![plus1; n], &[c])
            {
                agree += 1;
            }
        }
    }
    println!(
        "CONGR rules: {}, C = B ∪ R: {} facts, built+evaluated in {ms:.2} ms",
        congr.rules.len(),
        congr.c_size
    );
    println!("membership agreement with the graph spec: {agree}/{total} (must be total)\n");
    assert_eq!(agree, total);
}
