//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p fundb-bench --bin experiments [e1 … e18 | all]`
//!
//! Each experiment prints a small table comparing the paper's claim with
//! what this implementation measures. Absolute times are machine-dependent;
//! the *shapes* (who wins, growth orders, crossovers) are the reproduction
//! targets.
//!
//! Every run also appends a machine-readable trajectory to
//! `BENCH_pr10.json` (override with `FUNDB_BENCH_JSON`): one record per
//! experiment with its wall time, plus detailed records (rows/s, join
//! probes, index hits/misses, threads) for the timed experiments. CI
//! uploads the file so the bench history accumulates across PRs.

use fundb_bench::{binary_counter, ring_planner, rotation, subset_lists};
use fundb_core::{
    analysis, normalize, to_pure, BoundedMaterialization, CongrForm, DataParams, Engine, EqSpec,
    GraphSpec, Query, ServeQuery,
};
use fundb_parser::Workspace;
use fundb_temporal::TemporalSpec;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);
    let mut bench = Bench::default();

    println!("fundb experiment harness — paper: Chomicki & Imieliński, SIGMOD 1989");
    println!("(run with --release for meaningful timings)\n");

    if want("e1") {
        let t = Instant::now();
        e1_lists_worked_example();
        bench.total("E1", t);
    }
    if want("e2") {
        let t = Instant::now();
        e2_meets();
        bench.total("E2", t);
    }
    if want("e3") {
        let t = Instant::now();
        e3_even();
        bench.total("E3", t);
    }
    if want("e4") {
        let t = Instant::now();
        e4_yesno_complexity(&mut bench);
        bench.total("E4", t);
    }
    if want("e5") {
        let t = Instant::now();
        e5_graphspec_size(&mut bench);
        bench.total("E5", t);
    }
    if want("e6") {
        let t = Instant::now();
        e6_eqspec();
        bench.total("E6", t);
    }
    if want("e7") {
        let t = Instant::now();
        e7_scope_bounds();
        bench.total("E7", t);
    }
    if want("e8") {
        let t = Instant::now();
        e8_incremental_queries();
        bench.total("E8", t);
    }
    if want("e9") {
        let t = Instant::now();
        e9_baseline_crossover();
        bench.total("E9", t);
    }
    if want("e10") {
        let t = Instant::now();
        e10_congr();
        bench.total("E10", t);
    }
    if want("e11") {
        let t = Instant::now();
        e11_parallel_scaling(&mut bench);
        bench.total("E11", t);
    }
    if want("e12") {
        let t = Instant::now();
        e12_governor_overhead(&mut bench);
        bench.total("E12", t);
    }
    if want("e13") {
        let t = Instant::now();
        e13_serving_throughput(&mut bench);
        bench.total("E13", t);
    }
    if want("e14") {
        let t = Instant::now();
        e14_planner(&mut bench);
        bench.total("E14", t);
    }
    if want("e15") {
        let t = Instant::now();
        e15_goal_directed(&mut bench);
        bench.total("E15", t);
    }
    if want("e16") {
        let t = Instant::now();
        e16_adaptive(&mut bench);
        bench.total("E16", t);
    }
    if want("e17") {
        let t = Instant::now();
        e17_durability(&mut bench);
        bench.total("E17", t);
    }
    if want("e18") {
        let t = Instant::now();
        e18_churn(&mut bench);
        bench.total("E18", t);
    }

    match bench.write() {
        Ok(path) => println!("bench trajectory written to {path}"),
        Err(e) => eprintln!("warning: could not write bench trajectory: {e}"),
    }
}

/// Machine-readable bench trajectory, hand-rolled JSON (the workspace
/// builds offline, without serde).
#[derive(Default)]
struct Bench {
    records: Vec<String>,
}

impl Bench {
    /// Records one measurement as a flat JSON object. Values whose
    /// fractional part is zero are emitted as integers.
    fn push(&mut self, experiment: &str, workload: &str, nums: &[(&str, f64)]) {
        let mut obj = format!(
            "{{\"experiment\":\"{}\",\"workload\":\"{}\"",
            esc(experiment),
            esc(workload)
        );
        for (k, v) in nums {
            if v.fract() == 0.0 && v.abs() < 1e15 {
                obj.push_str(&format!(",\"{}\":{}", esc(k), *v as i64));
            } else {
                obj.push_str(&format!(",\"{}\":{:.3}", esc(k), v));
            }
        }
        obj.push('}');
        self.records.push(obj);
    }

    /// Records an experiment's total wall time.
    fn total(&mut self, experiment: &str, since: Instant) {
        let ms = since.elapsed().as_secs_f64() * 1e3;
        self.push(experiment, "total", &[("wall_ms", ms)]);
    }

    /// Writes the trajectory file and returns its path.
    fn write(&self) -> std::io::Result<String> {
        let path =
            std::env::var("FUNDB_BENCH_JSON").unwrap_or_else(|_| "BENCH_pr10.json".to_string());
        let mut out = String::from("{\"schema\":\"fundb-bench-v1\",\"pr\":10,\"records\":[\n");
        out.push_str(&self.records.join(",\n"));
        out.push_str("\n]}\n");
        std::fs::write(&path, out)?;
        Ok(path)
    }
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn banner(id: &str, title: &str, claim: &str) {
    println!("==============================================================");
    println!("{id}: {title}");
    println!("paper: {claim}");
    println!("--------------------------------------------------------------");
}

/// E1 — §3.4 worked example (the output of Figure 1).
fn e1_lists_worked_example() {
    banner(
        "E1",
        "Algorithm Q on the §3.4 list example",
        "representatives 0, a, b, ab; slices L[a]={Member(a,a)}, …; \
         successors f_a(a)=a, f_b(a)=ab, …",
    );
    let mut ws = subset_lists(2);
    let spec = ws.graph_spec().unwrap();
    let min = spec.minimized();
    println!(
        "Algorithm Q: {} clusters ({} active); after minimization: {} (paper: 4)",
        spec.cluster_count(),
        spec.active_count,
        min.cluster_count()
    );
    print!("{}", min.render(&ws.interner));
    println!();
}

/// E2 — the §1 introductory example.
fn e2_meets() {
    banner(
        "E2",
        "Meets/Next advisor rotation (§1)",
        "two congruence classes {0,2,4,…} and {1,3,5,…}; primary database \
         Meets(0,Tony), Meets(1,Jan); f(0)=1, f(1)=0; R = {(0,2)}",
    );
    let mut ws = rotation(2);
    let spec = ws.graph_spec().unwrap().minimized();
    println!("clusters: {} (paper: 2)", spec.cluster_count());
    print!("{}", spec.render(&ws.interner));
    let t = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
    println!(
        "temporal equation R = {{({}, {})}} (paper: (0,2))\n",
        t.equation().0,
        t.equation().1
    );
}

/// E3 — the §3.5 Even example with its membership tests.
fn e3_even() {
    banner(
        "E3",
        "Equational specification on Even (§3.5)",
        "B = D, R = {(0,2)}; Even(4) ∈ L via (0,4) ∈ Cl(R); Even(3) ∉ L",
    );
    let mut ws = Workspace::new();
    ws.parse("Even(t) -> Even(t+2).\nEven(0).").unwrap();
    let t = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
    println!(
        "temporal spec: ρ={}, λ={}, R = {{({},{})}}, |B| = {}",
        t.rho(),
        t.lambda(),
        t.equation().0,
        t.equation().1,
        t.primary_size()
    );
    let mut eq = ws.eq_spec().unwrap();
    for (fact, expected) in [("Even(4)", true), ("Even(3)", false), ("Even(100)", true)] {
        let got = ws.holds_eq(&mut eq, fact).unwrap();
        println!("{fact:>10} -> {got} (paper: {expected})");
        assert_eq!(got, expected);
    }
    println!();
}

/// E4 — Theorem 4.1: temporal vs general engine cost on the same inputs.
fn e4_yesno_complexity(bench: &mut Bench) {
    banner(
        "E4",
        "Yes-no query processing cost (Theorem 4.1)",
        "PSPACE-complete for temporal rules vs DEXPTIME-complete for \
         functional rules: the temporal evaluator should win clearly, and \
         the adversarial family should grow exponentially for both",
    );
    println!(
        "{:>22} {:>12} {:>14} {:>14} {:>8} {:>8} {:>8} {:>10} {:>10}",
        "workload",
        "lasso/spec",
        "temporal (ms)",
        "general (ms)",
        "passes",
        "memo",
        "delta",
        "probes",
        "idx hits"
    );
    for (name, mut ws) in [
        ("rotation(8)", rotation(8)),
        ("rotation(64)", rotation(64)),
        ("counter(4)", binary_counter(4)),
        ("counter(6)", binary_counter(6)),
        ("counter(8)", binary_counter(8)),
    ] {
        let t0 = Instant::now();
        let tspec = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
        let temporal_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let mut engine = Engine::build(&ws.program, &ws.db, &mut ws.interner).unwrap();
        engine.solve().unwrap();
        let general_ms = t1.elapsed().as_secs_f64() * 1e3;
        let stats = engine.stats();
        println!(
            "{:>22} {:>12} {:>14.2} {:>14.2} {:>8} {:>8} {:>8} {:>10} {:>10}",
            name,
            tspec.lambda(),
            temporal_ms,
            general_ms,
            stats.passes,
            engine.memo_len(),
            stats.delta_atoms,
            stats.join_probes,
            stats.index_hits
        );
        bench.push(
            "E4",
            name,
            &[
                ("temporal_ms", temporal_ms),
                ("general_ms", general_ms),
                ("join_probes", stats.join_probes as f64),
                ("index_hits", stats.index_hits as f64),
                ("index_misses", stats.index_misses as f64),
                ("derived_rows", stats.derived_rows as f64),
                (
                    "rows_per_s",
                    stats.derived_rows as f64 / (general_ms / 1e3).max(1e-9),
                ),
            ],
        );
        // The final pass only verifies the fixpoint: it must absorb nothing.
        assert_eq!(stats.pass_deltas.last(), Some(&0));
    }
    println!(
        "expected shape: temporal wins on plain lassos, the semi-naive general \
         engine on wide states; counter column doubles per bit; \
         the last pass delta is always 0 (semi-naive verification pass)\n"
    );
}

/// E5 — Theorem 4.2: graph specification size and construction time.
fn e5_graphspec_size(bench: &mut Bench) {
    banner(
        "E5",
        "Graph specification size (Theorem 4.2)",
        "computable in DEXPTIME; upper AND lower bounds on the size are \
         exponential — benign families stay linear, adversarial families \
         must blow up",
    );
    println!(
        "{:>18} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "workload", "db size", "clusters", "|B|", "build (ms)", "probes"
    );
    let mut rows: Vec<(String, usize)> = Vec::new();
    // The engine is built explicitly (rather than via `ws.graph_spec()`)
    // so the fixpoint's join-probe counters are visible alongside the
    // build time.
    for k in [4usize, 8, 16, 32] {
        let mut ws = rotation(k);
        let t0 = Instant::now();
        let mut engine = ws.engine().unwrap();
        let spec = fundb_core::GraphSpec::from_engine(&mut engine).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = engine.stats().clone();
        println!(
            "{:>18} {:>10} {:>10} {:>10} {:>12.2} {:>10}",
            format!("rotation({k})"),
            k + 1,
            spec.cluster_count(),
            spec.primary_size(),
            ms,
            stats.join_probes
        );
        bench.push(
            "E5",
            &format!("rotation({k})"),
            &[
                ("build_ms", ms),
                ("clusters", spec.cluster_count() as f64),
                ("join_probes", stats.join_probes as f64),
                ("index_hits", stats.index_hits as f64),
                ("index_misses", stats.index_misses as f64),
            ],
        );
        rows.push((format!("rotation({k})"), spec.cluster_count()));
    }
    for n in [2usize, 3, 4, 5] {
        let mut ws = subset_lists(n);
        let t0 = Instant::now();
        let mut engine = ws.engine().unwrap();
        let spec = fundb_core::GraphSpec::from_engine(&mut engine)
            .unwrap()
            .minimized();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let stats = engine.stats().clone();
        println!(
            "{:>18} {:>10} {:>10} {:>10} {:>12.2} {:>10}",
            format!("subset_lists({n})"),
            n,
            spec.cluster_count(),
            spec.primary_size(),
            ms,
            stats.join_probes
        );
        bench.push(
            "E5",
            &format!("subset_lists({n})"),
            &[
                ("build_ms", ms),
                ("clusters", spec.cluster_count() as f64),
                ("join_probes", stats.join_probes as f64),
                ("index_hits", stats.index_hits as f64),
                ("index_misses", stats.index_misses as f64),
            ],
        );
        rows.push((format!("subset_lists({n})"), spec.cluster_count()));
    }
    println!("expected shape: rotation linear in k; subset_lists ≈ 2^n in the DB size\n");
}

/// E6 — Theorem 4.3: equational vs graph specification sizes.
fn e6_eqspec() {
    banner(
        "E6",
        "Equational specification size (Theorem 4.3)",
        "double-exponential in general, single-exponential for temporal \
         rules; for temporal rules R is a single pair while B may be large",
    );
    println!(
        "{:>18} {:>10} {:>10} {:>10} {:>10}",
        "workload", "clusters", "|B|", "|R|", "|R| temporal"
    );
    for (name, mut ws, temporal) in [
        ("rotation(12)", rotation(12), true),
        ("counter(5)", binary_counter(5), true),
        ("subset_lists(4)", subset_lists(4), false),
        ("ring_planner(6)", ring_planner(6), false),
    ] {
        let spec = ws.graph_spec().unwrap();
        let eq = EqSpec::from_graph(&spec);
        let tr = if temporal {
            let t = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
            format!("1 pair ({} , {})", t.equation().0, t.equation().1)
        } else {
            "n/a".to_string()
        };
        println!(
            "{:>18} {:>10} {:>10} {:>10} {:>10}",
            name,
            spec.cluster_count(),
            eq.primary_size(),
            eq.equation_count(),
            tr
        );
    }
    println!(
        "expected shape: temporal |R| collapses to one pair; general |R| grows with m·clusters\n"
    );
}

/// E7 — Lemma 3.2: measured congruence scope vs the bound 1 + m·s·2^gsize.
fn e7_scope_bounds() {
    banner(
        "E7",
        "Congruence scope vs the Lemma 3.2 bound",
        "scope≅(L) ≤ 1 + m·s·2^gsize (and scope∼ ≤ 2^gsize)",
    );
    println!(
        "{:>18} {:>10} {:>14} {:>22}",
        "workload", "clusters", "distinct states", "bound 1+m·s·2^gsize"
    );
    for (name, mut ws) in [
        ("rotation(6)", rotation(6)),
        ("counter(4)", binary_counter(4)),
        ("subset_lists(3)", subset_lists(3)),
        ("ring_planner(4)", ring_planner(4)),
    ] {
        let normal = normalize(&ws.program, &mut ws.interner);
        let pure = to_pure(&normal, &ws.db, &mut ws.interner).unwrap();
        let params = DataParams::of(&pure.schema);
        let spec = ws.graph_spec().unwrap();
        let mut states: Vec<_> = spec.nodes.iter().map(|n| n.state.clone()).collect();
        states.sort_by_key(|s| s.iter().map(|a| a.index()).collect::<Vec<_>>());
        states.dedup();
        let bound = params.congruence_scope_bound();
        let bound_str = if bound == u128::MAX {
            ">= 2^127".to_string()
        } else {
            bound.to_string()
        };
        println!(
            "{:>18} {:>10} {:>14} {:>22}",
            name,
            spec.cluster_count(),
            states.len(),
            bound_str
        );
        assert!(
            bound == u128::MAX || (spec.cluster_count() as u128) <= bound,
            "Lemma 3.2 violated on {name}"
        );
    }
    println!("expected shape: measured scope far below the worst-case bound, never above\n");
}

/// E8 — Theorem 5.1: incremental vs full-recompute query answering.
fn e8_incremental_queries() {
    banner(
        "E8",
        "Incremental query answering (Theorem 5.1)",
        "uniform queries have incremental specifications (Q(B), F): no \
         recomputation of the fixpoint specification is needed",
    );
    println!(
        "{:>18} {:>16} {:>18}",
        "workload", "incremental (ms)", "by extension (ms)"
    );
    for (name, mut ws) in [
        ("rotation(16)", rotation(16)),
        ("counter(6)", binary_counter(6)),
        ("subset_lists(4)", subset_lists(4)),
    ] {
        let spec = ws.graph_spec().unwrap();
        // The canonical uniform query {(s, x̄) : P(s, x̄)} over the first
        // functional predicate.
        let q = first_functional_query(&mut ws);
        let t0 = Instant::now();
        let _inc = q.answer_incremental(&spec, &ws.interner).unwrap();
        let inc_ms = t0.elapsed().as_secs_f64() * 1e3;
        let t1 = Instant::now();
        let _ext = q
            .answer_by_extension(&ws.program, &ws.db, &mut ws.interner)
            .unwrap();
        let ext_ms = t1.elapsed().as_secs_f64() * 1e3;
        println!("{name:>18} {inc_ms:>16.2} {ext_ms:>18.2}");
    }
    println!("expected shape: incremental orders of magnitude cheaper\n");
}

fn first_functional_query(ws: &mut Workspace) -> Query {
    use fundb_core::program::{Atom, FTerm, NTerm};
    // Find a functional atom in some rule head.
    let (pred, extra) = ws
        .program
        .rules
        .iter()
        .find_map(|r| r.head.fterm().map(|_| (r.head.pred(), r.head.args().len())))
        .expect("workloads have functional predicates");
    let s = fundb_term::Var(ws.interner.intern("q_s"));
    let xs: Vec<fundb_term::Var> = (0..extra)
        .map(|i| fundb_term::Var(ws.interner.intern(&format!("q_x{i}"))))
        .collect();
    Query {
        out_fvar: Some(s),
        out_nvars: xs.clone(),
        body: vec![Atom::Functional {
            pred,
            fterm: FTerm::Var(s),
            args: xs.into_iter().map(NTerm::Var).collect(),
        }],
    }
}

/// E9 — the [RBS87] baseline: bounded materialization diverges; the
/// relational specification stays constant and answers any horizon.
fn e9_baseline_crossover() {
    banner(
        "E9",
        "Relational specification vs bounded materialization ([RBS87])",
        "a conventional engine materializes a horizon that grows without \
         bound; the relational specification is finite and complete",
    );
    let mut ws = rotation(6);
    let normal = normalize(&ws.program, &mut ws.interner);
    let pure = to_pure(&normal, &ws.db, &mut ws.interner).unwrap();
    println!(
        "{:>12} {:>14} {:>14} {:>16}",
        "horizon", "naive facts", "naive (ms)", "spec tuples (ms)"
    );
    let t0 = Instant::now();
    let spec = ws.graph_spec().unwrap();
    let spec_ms = t0.elapsed().as_secs_f64() * 1e3;
    for depth in [8usize, 32, 128, 512] {
        let t1 = Instant::now();
        let mat = BoundedMaterialization::run(&pure, depth, &mut ws.interner).unwrap();
        let ms = t1.elapsed().as_secs_f64() * 1e3;
        println!(
            "{:>12} {:>14} {:>14.2} {:>16}",
            depth,
            mat.fact_count(),
            ms,
            format!("{} ({spec_ms:.2})", spec.primary_size()),
        );
    }
    let report = analysis::analyze(&spec);
    println!(
        "fixpoint finite? {} — the naive column would grow forever; the spec answers day 10^12 in O(1)\n",
        report.finite
    );
}

/// E10 — §3.6: the CONGR canonical form reproduces the fixpoint.
fn e10_congr() {
    banner(
        "E10",
        "CONGR canonical form (§3.6)",
        "LFP(Z, D) = LFP(CONGR, B ∪ R); CONGR depends only on the predicate \
         vocabulary",
    );
    let mut ws = rotation(3);
    let spec = ws.graph_spec().unwrap();
    let eq = EqSpec::from_graph(&spec);
    let t0 = Instant::now();
    let congr = CongrForm::build(&eq, 12, &mut ws.interner).unwrap();
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    let meets = fundb_term::Pred(ws.interner.get("Meets").unwrap());
    let plus1 = fundb_term::Func(ws.interner.get("+1").unwrap());
    let mut agree = 0usize;
    let mut total = 0usize;
    for n in 0..=12usize {
        for i in 0..3usize {
            let c = fundb_term::Cst(ws.interner.get(&format!("S{i}")).unwrap());
            total += 1;
            if congr.holds(meets, &vec![plus1; n], &[c]) == spec.holds(meets, &vec![plus1; n], &[c])
            {
                agree += 1;
            }
        }
    }
    println!(
        "CONGR rules: {}, C = B ∪ R: {} facts, built+evaluated in {ms:.2} ms",
        congr.rules.len(),
        congr.c_size
    );
    println!("membership agreement with the graph spec: {agree}/{total} (must be total)\n");
    assert_eq!(agree, total);
}

/// Transitive closure of a chain with `n` edges: rules + fresh EDB.
/// `right` picks the recursion direction: left recursion keeps the
/// delta atom leading in written order; right recursion
/// (`Path(x,z) ← Edge(x,y), Path(y,z)`) puts it second, which the
/// compiled join programs hoist outermost — the workload that showed
/// the interpreter's worst probe blow-up.
fn tc_chain_dir(
    n: usize,
    right: bool,
) -> (
    fundb_term::Interner,
    fundb_datalog::Database,
    Vec<fundb_datalog::Rule>,
) {
    use fundb_datalog::{Atom, Database, Rule, Term};
    use fundb_term::{Cst, Interner, Pred, Var};
    let mut i = Interner::new();
    let edge = Pred(i.intern("Edge"));
    let path = Pred(i.intern("Path"));
    let (x, y, z) = (Var(i.intern("x")), Var(i.intern("y")), Var(i.intern("z")));
    let body = if right {
        vec![
            Atom::new(edge, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(path, vec![Term::Var(y), Term::Var(z)]),
        ]
    } else {
        vec![
            Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
            Atom::new(edge, vec![Term::Var(y), Term::Var(z)]),
        ]
    };
    let rules = vec![
        Rule::new(
            Atom::new(path, vec![Term::Var(x), Term::Var(y)]),
            vec![Atom::new(edge, vec![Term::Var(x), Term::Var(y)])],
        ),
        Rule::new(Atom::new(path, vec![Term::Var(x), Term::Var(z)]), body),
    ];
    let mut db = Database::new();
    let nodes: Vec<Cst> = (0..=n).map(|k| Cst(i.intern(&format!("v{k}")))).collect();
    for w in nodes.windows(2) {
        db.insert(edge, &[w[0], w[1]]);
    }
    (i, db, rules)
}

/// E11 — engine-level, beyond the paper: the pooled row-store and parallel
/// semi-naive scaling introduced in PR 2. Transitive closure of a chain is
/// the canonical workload where delta rounds are wide enough to chunk.
fn e11_parallel_scaling(bench: &mut Bench) {
    use fundb_datalog as dl;
    use fundb_term::FxHasher;
    use std::hash::Hasher;

    banner(
        "E11",
        "Parallel semi-naive fixpoint over the pooled row-store",
        "engine-level (no paper claim): thread count must never change \
         results — worker buffers merge in task order — while wide delta \
         rounds split across cores",
    );

    /// Order-sensitive fingerprint of every relation's rows, cheap enough
    /// to take on multi-million-row databases: byte-identity proxy for the
    /// parallel ≡ sequential check.
    fn order_hash(db: &dl::Database) -> u64 {
        let mut rels: Vec<_> = db.iter().collect();
        rels.sort_by_key(|(p, _)| p.index());
        let mut h = FxHasher::default();
        for (p, rel) in rels {
            h.write_usize(p.index());
            for row in rel.rows() {
                for c in row {
                    h.write_usize(c.index());
                }
            }
        }
        h.finish()
    }

    println!(
        "{:>14} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "workload", "threads", "wall (ms)", "rows", "rows/s", "probes", "speedup"
    );
    let families: &[(&str, bool, &[usize])] = &[
        ("tc_chain", false, &[256, 1024, 2048]),
        ("tc_right", true, &[64, 256, 512]),
    ];
    for &(family, right, sizes) in families {
        for &n in sizes {
            let mut seq: Option<(f64, u64, dl::EvalStats)> = None;
            for &threads in &[1usize, 2, 4, 8] {
                let (_i, mut db, rules) = tc_chain_dir(n, right);
                let plan = dl::DeltaPlan::new(&rules);
                let mut eval = dl::IncrementalEval::new()
                    .with_threads(threads)
                    .with_parallel_threshold(1);
                let t0 = Instant::now();
                let stats = eval.run(&mut db, &rules, &plan).unwrap();
                let ms = t0.elapsed().as_secs_f64() * 1e3;
                let hash = order_hash(&db);
                let (base_ms, base_hash, base_stats) = *seq.get_or_insert((ms, hash, stats));
                // Determinism contract: identical rows, order, and counters
                // at every thread count.
                assert_eq!(hash, base_hash, "row order diverged at {threads} threads");
                assert_eq!(stats, base_stats, "stats diverged at {threads} threads");
                let rows_per_s = stats.derived as f64 / (ms / 1e3).max(1e-9);
                let speedup = base_ms / ms.max(1e-9);
                println!(
                    "{:>14} {:>8} {:>12.2} {:>12} {:>12.0} {:>12} {:>9.2}x",
                    format!("{family}({n})"),
                    threads,
                    ms,
                    stats.derived,
                    rows_per_s,
                    stats.join_probes,
                    speedup
                );
                bench.push(
                    "E11",
                    &format!("{family}({n})"),
                    &[
                        ("threads", threads as f64),
                        ("wall_ms", ms),
                        ("derived_rows", stats.derived as f64),
                        ("rows_per_s", rows_per_s),
                        ("join_probes", stats.join_probes as f64),
                        ("index_hits", stats.index_hits as f64),
                        ("index_misses", stats.index_misses as f64),
                        ("speedup_vs_1t", speedup),
                    ],
                );
            }
        }
    }

    // The same knob on the general engine (the E4 workloads): local
    // evaluations there stay under the parallel threshold by design, so
    // this measures that the thread knob is output- and cost-neutral on
    // small deltas, not a speedup.
    for (name, build) in [
        ("rotation(64)", 64usize),
        ("counter(8)", 0usize), // 0 marks the counter workload below
    ] {
        let mut base: Option<(f64, fundb_core::EngineStats)> = None;
        for &threads in &[1usize, 4] {
            let mut ws = if build > 0 {
                rotation(build)
            } else {
                binary_counter(8)
            };
            let mut engine = Engine::build(&ws.program, &ws.db, &mut ws.interner).unwrap();
            engine.set_threads(Some(threads));
            let t0 = Instant::now();
            engine.solve().unwrap();
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let stats = engine.stats().clone();
            if let Some((base_ms, base_stats)) = &base {
                assert_eq!(
                    &stats, base_stats,
                    "engine stats diverged at {threads} threads"
                );
                println!(
                    "{:>14} {:>8} {:>12.2} {:>12} {:>12} {:>12} {:>9.2}x",
                    name,
                    threads,
                    ms,
                    stats.derived_rows,
                    "-",
                    stats.join_probes,
                    base_ms / ms.max(1e-9)
                );
            } else {
                println!(
                    "{:>14} {:>8} {:>12.2} {:>12} {:>12} {:>12} {:>10}",
                    name, threads, ms, stats.derived_rows, "-", stats.join_probes, "1.00x"
                );
            }
            bench.push(
                "E11",
                name,
                &[
                    ("threads", threads as f64),
                    ("wall_ms", ms),
                    ("derived_rows", stats.derived_rows as f64),
                    ("join_probes", stats.join_probes as f64),
                ],
            );
            base.get_or_insert((ms, stats));
        }
    }
    println!(
        "expected shape: identical rows/probes at every thread count \
         (deterministic merge); chain speedups track physical cores — on a \
         single-core host the parallel path only pays its scaffolding\n"
    );
}

/// E12 — the execution governor's steady-state cost: the same E4/E11
/// workloads with every budget armed (but sized never to trip), against the
/// default unlimited governor. The acceptance target is ≤2% overhead.
fn e12_governor_overhead(bench: &mut Bench) {
    use fundb_datalog as dl;

    banner(
        "E12",
        "Execution governor overhead (budgets armed vs unlimited)",
        "engine-level (no paper claim): round-boundary checks plus one \
         cooperative check every 1024 join probes must cost ≤2% on the \
         probe-bound workloads of E4/E11",
    );

    /// An armed-but-never-tripping governor: every budget dimension set,
    /// all far beyond what the workload can reach.
    fn armed() -> dl::Governor {
        dl::Governor::new(
            dl::Budget::unlimited()
                .with_max_rows(usize::MAX / 2)
                .with_max_rounds(usize::MAX / 2)
                .with_max_millis(86_400_000)
                .with_max_bytes(usize::MAX / 2),
        )
        .with_faults(dl::FaultPlan::default())
    }

    /// Interleaved min-of-N: base and governed runs alternate so clock
    /// drift and frequency scaling hit both sides equally (back-to-back
    /// blocks of 5 showed ±40% phantom "overhead" on a noisy host).
    fn min_pair(mut base: impl FnMut() -> f64, mut gov: impl FnMut() -> f64) -> (f64, f64) {
        let mut best = (f64::INFINITY, f64::INFINITY);
        for _ in 0..7 {
            best.0 = best.0.min(base());
            best.1 = best.1.min(gov());
        }
        best
    }

    println!(
        "{:>16} {:>14} {:>14} {:>10}",
        "workload", "base (ms)", "governed (ms)", "overhead"
    );
    // E11-style: the compiled-join fixpoint, where the probe-level check
    // mask is exercised millions of times.
    for (name, n, right) in [
        ("tc_chain(2048)", 2048usize, false),
        ("tc_right(512)", 512, true),
    ] {
        let run = |governor: Option<dl::Governor>| {
            let (_i, mut db, rules) = tc_chain_dir(n, right);
            let plan = dl::DeltaPlan::new(&rules);
            let mut eval = dl::IncrementalEval::new().with_threads(1);
            if let Some(g) = governor {
                eval = eval.with_governor(g);
            }
            let t0 = Instant::now();
            eval.run(&mut db, &rules, &plan).unwrap();
            t0.elapsed().as_secs_f64() * 1e3
        };
        let (base_ms, gov_ms) = min_pair(|| run(None), || run(Some(armed())));
        report_overhead(bench, name, base_ms, gov_ms);
    }
    // E4-style: the general engine (many small local evaluations — the
    // round-boundary checks dominate here, not the probe mask).
    for (name, bits) in [("counter(6)", 6usize), ("counter(8)", 8)] {
        let run = |governor: Option<dl::Governor>| {
            let mut ws = binary_counter(bits);
            let mut engine = Engine::build(&ws.program, &ws.db, &mut ws.interner).unwrap();
            if let Some(g) = governor {
                engine.set_governor(g);
            }
            let t0 = Instant::now();
            engine.solve().unwrap();
            t0.elapsed().as_secs_f64() * 1e3
        };
        let (base_ms, gov_ms) = min_pair(|| run(None), || run(Some(armed())));
        report_overhead(bench, name, base_ms, gov_ms);
    }
    println!(
        "expected shape: overhead within noise (target ≤2%) — the probe-mask \
         check is a single branch per 1024 probes, round checks are O(rounds)\n"
    );
}

fn report_overhead(bench: &mut Bench, name: &str, base_ms: f64, gov_ms: f64) {
    let overhead_pct = (gov_ms - base_ms) / base_ms.max(1e-9) * 100.0;
    println!("{name:>16} {base_ms:>14.2} {gov_ms:>14.2} {overhead_pct:>+9.2}%");
    bench.push(
        "E12",
        name,
        &[
            ("base_ms", base_ms),
            ("governed_ms", gov_ms),
            ("overhead_pct", overhead_pct),
        ],
    );
}

/// E13 — the PR 5 read-serving layer: frozen specifications, the
/// canonical-key answer cache, and the parallel batch path, measured
/// against the per-query APIs that existed before this PR on the same
/// materialized knowledge.
fn e13_serving_throughput(bench: &mut Bench) {
    use fundb_datalog as dl;

    banner(
        "E13",
        "Frozen-spec serving throughput (freeze + memoize + batch)",
        "engine-level (no paper claim): a sealed specification answers \
         repeated yes/no queries through a canonical-key striped cache and \
         a parallel batch path; answers stay byte-identical to the \
         per-query walk at every thread count",
    );
    println!(
        "{:>16} {:>8} {:>14} {:>12} {:>12} {:>10}",
        "workload", "threads", "per-query q/s", "cold q/s", "warm q/s", "warm gain"
    );

    let n_queries = 4096usize;

    // Functional workloads: the baseline is the mutable spec's per-query
    // hash-map successor walk (`GraphSpec::holds`), the only read API
    // before this PR. Paths overlap heavily, so the frozen cache collapses
    // the workload onto a few canonical keys.
    for (name, which) in [("rotation(64)", 64usize), ("counter(8)", 0)] {
        let mut ws = if which > 0 {
            rotation(which)
        } else {
            binary_counter(8)
        };
        let spec = ws.graph_spec().unwrap();
        let funcs = spec.funcs.symbols().to_vec();
        let atoms: Vec<_> = spec.atoms.iter().map(|(_, p, a)| (p, a.to_vec())).collect();
        let queries: Vec<ServeQuery> = (0..n_queries)
            .map(|k| {
                let (pred, args) = &atoms[k % atoms.len()];
                ServeQuery::Member {
                    pred: *pred,
                    path: (0..k % 64).map(|j| funcs[(k + j) % funcs.len()]).collect(),
                    args: args.clone(),
                }
            })
            .collect();
        let t0 = Instant::now();
        let expected: Vec<bool> = queries
            .iter()
            .map(|q| match q {
                ServeQuery::Member { pred, path, args } => spec.holds(*pred, path, args),
                ServeQuery::Relational { pred, args } => spec.holds_relational(*pred, args),
            })
            .collect();
        let base_qps = n_queries as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        serve_rows(bench, name, &spec, &queries, &expected, base_qps);
    }

    // Relational workloads (the chains of E11/E12): the baseline is the
    // ad-hoc join API `fundb_datalog::query` over the materialized
    // fixpoint — one compiled join program per call, the pre-PR way to ask
    // a single `Path(a, b)?`.
    for (name, n, right) in [
        ("tc_chain(1024)", 1024usize, false),
        ("tc_right(512)", 512, true),
    ] {
        let mut ws = Workspace::new();
        let mut text = String::from(if right {
            "Edge(x, y) -> Path(x, y).\nEdge(x, y), Path(y, z) -> Path(x, z).\n"
        } else {
            "Edge(x, y) -> Path(x, y).\nPath(x, y), Edge(y, z) -> Path(x, z).\n"
        });
        for k in 0..n {
            text.push_str(&format!("Edge(V{k}, V{}).\n", k + 1));
        }
        ws.parse(&text).unwrap();
        let spec = ws.graph_spec().unwrap();
        let path_pred = fundb_term::Pred(ws.interner.get("Path").unwrap());
        let node = |k: usize| fundb_term::Cst(ws.interner.get(&format!("V{k}")).unwrap());
        // A fixed pseudo-random pair stream; ground truth on the chain is
        // simply i < j, which cross-checks both serving paths for free.
        let pairs: Vec<(usize, usize)> = (0..n_queries)
            .map(|k| ((k * 7919) % (n + 1), (k * 104_729 + 13) % (n + 1)))
            .collect();
        let queries: Vec<ServeQuery> = pairs
            .iter()
            .map(|&(i, j)| ServeQuery::Relational {
                pred: path_pred,
                args: vec![node(i), node(j)],
            })
            .collect();
        let t0 = Instant::now();
        let expected: Vec<bool> = pairs
            .iter()
            .map(|&(i, j)| {
                let body = [dl::Atom::new(
                    path_pred,
                    vec![dl::Term::Const(node(i)), dl::Term::Const(node(j))],
                )];
                !dl::query(&spec.nf, &body, &[]).unwrap().is_empty()
            })
            .collect();
        let base_qps = n_queries as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        for (&(i, j), &ans) in pairs.iter().zip(&expected) {
            assert_eq!(ans, i < j, "chain ground truth at ({i}, {j})");
        }
        serve_rows(bench, name, &spec, &queries, &expected, base_qps);
    }
    println!(
        "expected shape: warm-cache batch serving beats the per-query paths \
         by well over 5x on tc_right(512) (amortized compilation + cache \
         hits + cores); answers byte-identical at 1/2/4/8 threads\n"
    );
}

/// Freezes `spec` once per thread count and times a cold and a warm batch
/// pass, asserting byte-identical answers against the per-query baseline.
fn serve_rows(
    bench: &mut Bench,
    name: &str,
    spec: &GraphSpec,
    queries: &[ServeQuery],
    expected: &[bool],
    base_qps: f64,
) {
    for &threads in &[1usize, 2, 4, 8] {
        let frozen = spec.clone().freeze();
        let t0 = Instant::now();
        let cold = frozen.answer_batch_threads(queries, threads);
        let cold_qps = queries.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        let t0 = Instant::now();
        let warm = frozen.answer_batch_threads(queries, threads);
        let warm_qps = queries.len() as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(
            cold, expected,
            "{name}: cold answers diverged at {threads} threads"
        );
        assert_eq!(
            warm, expected,
            "{name}: warm answers diverged at {threads} threads"
        );
        let gain = warm_qps / base_qps.max(1e-9);
        println!(
            "{:>16} {:>8} {:>14.0} {:>12.0} {:>12.0} {:>9.1}x",
            name, threads, base_qps, cold_qps, warm_qps, gain
        );
        let stats = frozen.serve_stats();
        bench.push(
            "E13",
            name,
            &[
                ("threads", threads as f64),
                ("per_query_qps", base_qps),
                ("cold_qps", cold_qps),
                ("warm_qps", warm_qps),
                ("warm_speedup_vs_perquery", gain),
                ("cache_hits", stats.hits as f64),
                ("cache_misses", stats.misses as f64),
            ],
        );
    }
}

/// E14 — PR 6: cost-based join planning over the generated scenario
/// families from `fundb_bench::scenariogen`. Planner-on compiles every
/// rule with `DeltaPlan::planned` (cardinality estimates snapshotted from
/// the loaded EDB); planner-off uses `DeltaPlan::new` (the greedy static
/// order that ships inside the core engine). Answers must be
/// byte-identical either way — only probe counts and wall time may move.
fn e14_planner(bench: &mut Bench) {
    use fundb_bench::scenariogen::RELATIONAL_FAMILIES;
    use fundb_datalog as dl;

    banner(
        "E14",
        "Cost-based join planning on generated scenario families",
        "engine-level (no paper claim): cardinality estimates must cut join \
         probes on adversarially-ordered rule bodies while answers stay \
         byte-identical, and must stay within 2% on workloads where the \
         greedy order was already optimal",
    );

    /// Canonical sorted dump: the byte-identity proxy for
    /// planner-on ≡ planner-off (plans may differ, answers may not).
    fn sorted_dump(db: &dl::Database) -> Vec<(usize, Vec<Vec<usize>>)> {
        let mut rels: Vec<(usize, Vec<Vec<usize>>)> = db
            .iter()
            .map(|(p, rel)| {
                let mut rows: Vec<Vec<usize>> = rel
                    .rows()
                    .map(|row| row.iter().map(|c| c.index()).collect())
                    .collect();
                rows.sort();
                (p.index(), rows)
            })
            .collect();
        rels.sort();
        rels
    }

    println!(
        "{:>10} {:>6} {:>15} {:>15} {:>11} {:>11} {:>8}",
        "family", "seeds", "greedy probes", "planned probes", "greedy ms", "planned ms", "ratio"
    );
    let seeds: Vec<u64> = (1..=16).collect();
    let mut families_won = 0usize;
    for &(family, generate) in RELATIONAL_FAMILIES {
        let (mut g_probes, mut p_probes) = (0u64, 0u64);
        let (mut g_ms, mut p_ms) = (0f64, 0f64);
        for &seed in &seeds {
            let run = |planned: bool| {
                let s = generate(seed);
                let mut db = s.db;
                let plan = if planned {
                    dl::DeltaPlan::planned(&s.rules, &db)
                } else {
                    dl::DeltaPlan::new(&s.rules)
                };
                // Adaptivity off in BOTH arms: the PR 8 round-one planning
                // pass would otherwise planify the greedy arm and this
                // experiment would measure nothing. E16 measures that
                // recovery; E14 isolates plan-time costing.
                let mut eval = dl::IncrementalEval::new()
                    .with_threads(1)
                    .with_adaptive(false);
                let t0 = Instant::now();
                let stats = eval.run(&mut db, &s.rules, &plan).unwrap();
                (t0.elapsed().as_secs_f64() * 1e3, stats, sorted_dump(&db))
            };
            let (gm, gs, gd) = run(false);
            let (pm, ps, pd) = run(true);
            assert_eq!(gd, pd, "{family}(seed {seed}): planner changed the answers");
            g_probes += gs.join_probes as u64;
            p_probes += ps.join_probes as u64;
            g_ms += gm;
            p_ms += pm;
        }
        let ratio = g_probes as f64 / (p_probes as f64).max(1.0);
        if p_probes < g_probes {
            families_won += 1;
        }
        println!(
            "{:>10} {:>6} {:>15} {:>15} {:>11.2} {:>11.2} {:>7.2}x",
            family,
            seeds.len(),
            g_probes,
            p_probes,
            g_ms,
            p_ms,
            ratio
        );
        bench.push(
            "E14",
            family,
            &[
                ("scenarios", seeds.len() as f64),
                ("greedy_probes", g_probes as f64),
                ("planned_probes", p_probes as f64),
                ("probe_ratio", ratio),
                ("greedy_ms", g_ms),
                ("planned_ms", p_ms),
            ],
        );
    }
    println!(
        "families where the planner strictly cut probes: {families_won}/{} \
         (target ≥2)\n",
        RELATIONAL_FAMILIES.len()
    );

    // Regression guard on the established workloads: where the greedy order
    // was already optimal the planner may only add its one-off planning
    // cost. Interleaved min-of-7, same discipline as E12.
    fn min_pair(mut base: impl FnMut() -> f64, mut planned: impl FnMut() -> f64) -> (f64, f64) {
        let mut best = (f64::INFINITY, f64::INFINITY);
        for _ in 0..7 {
            best.0 = best.0.min(base());
            best.1 = best.1.min(planned());
        }
        best
    }

    println!(
        "{:>16} {:>14} {:>14} {:>10}",
        "workload", "greedy (ms)", "planned (ms)", "delta"
    );
    for (name, n, right) in [
        ("tc_chain(1024)", 1024usize, false),
        ("tc_right(256)", 256, true),
    ] {
        let run = |planned: bool| {
            let (_i, mut db, rules) = tc_chain_dir(n, right);
            let plan = if planned {
                dl::DeltaPlan::planned(&rules, &db)
            } else {
                dl::DeltaPlan::new(&rules)
            };
            // Same discipline as the probe table: adaptivity off so the
            // delta isolates the planner's one-off cost.
            let mut eval = dl::IncrementalEval::new()
                .with_threads(1)
                .with_adaptive(false);
            let t0 = Instant::now();
            eval.run(&mut db, &rules, &plan).unwrap();
            t0.elapsed().as_secs_f64() * 1e3
        };
        let (base_ms, plan_ms) = min_pair(|| run(false), || run(true));
        let delta_pct = (plan_ms - base_ms) / base_ms.max(1e-9) * 100.0;
        println!("{name:>16} {base_ms:>14.2} {plan_ms:>14.2} {delta_pct:>+9.2}%");
        bench.push(
            "E14",
            name,
            &[
                ("greedy_ms", base_ms),
                ("planned_ms", plan_ms),
                ("delta_pct", delta_pct),
            ],
        );
    }
    // The general engine compiles its plans before any facts exist, so the
    // planner's cold-stats fallback reduces to the greedy order by
    // construction — this row measures the noise floor of that claim.
    {
        let run = || {
            let mut ws = binary_counter(8);
            let mut engine = Engine::build(&ws.program, &ws.db, &mut ws.interner).unwrap();
            let t0 = Instant::now();
            engine.solve().unwrap();
            t0.elapsed().as_secs_f64() * 1e3
        };
        let (base_ms, plan_ms) = min_pair(run, run);
        let delta_pct = (plan_ms - base_ms) / base_ms.max(1e-9) * 100.0;
        println!(
            "{:>16} {base_ms:>14.2} {plan_ms:>14.2} {delta_pct:>+9.2}%  (cold stats: greedy by construction)",
            "counter(8)"
        );
        bench.push(
            "E14",
            "counter(8)",
            &[
                ("greedy_ms", base_ms),
                ("planned_ms", plan_ms),
                ("delta_pct", delta_pct),
            ],
        );
    }
    println!(
        "expected shape: probe ratio > 1 on skewed/adversarial families; \
         tc/counter deltas within noise (target ≤2%) since their written \
         orders are already what the cost model picks\n"
    );
}

/// E15 — goal-directed evaluation (PR 7): the magic-set demand rewrite vs
/// full materialization on deep recursive scenarios. Ground point queries
/// like `Path(N0, N512)` have an O(depth) demand cone while the full
/// fixpoint materializes O(depth²) tuples; the bench asserts answer
/// equality (ground and open goals, sorted) in-line and gates a ≥5x join
/// probe reduction on the transitive-closure families.
fn e15_goal_directed(bench: &mut Bench) {
    use fundb_bench::scenariogen::{self, Scenario};
    use fundb_datalog as dl;
    use fundb_term::{Cst, Pred, Var};

    banner(
        "E15",
        "Goal-directed evaluation: magic-set demand vs full materialization",
        "engine-level (no paper claim): ground point queries on depth-512 \
         recursive scenarios must touch only their demand cone — ≥5x fewer \
         join probes than the full fixpoint — with identical answers",
    );

    let depth = 512usize;
    let seed = 7u64;
    let workloads: Vec<(&str, Scenario, String, Vec<String>, bool)> = vec![
        (
            "tc_chain(512)",
            scenariogen::tc_chain_n(seed, depth),
            "Path".to_string(),
            vec!["N0".to_string(), format!("N{depth}")],
            true,
        ),
        (
            "tc_right(512)",
            scenariogen::tc_right_n(seed, depth),
            "Path".to_string(),
            vec!["N0".to_string(), format!("N{depth}")],
            true,
        ),
        (
            "bounded(512)",
            scenariogen::bounded_depth_n(seed, depth),
            format!("L{depth}"),
            vec![format!("Lv{depth}N0")],
            false,
        ),
    ];

    println!(
        "{:>14} {:>13} {:>13} {:>8} {:>9} {:>9} {:>9}",
        "workload", "full probes", "demand probes", "ratio", "full ms", "demand ms", "demanded"
    );
    for (name, s, pname, args, gated) in workloads {
        let p = Pred(s.interner.get(&pname).unwrap());
        let row: Vec<Cst> = args
            .iter()
            .map(|a| Cst(s.interner.get(a).unwrap()))
            .collect();
        let ground = [dl::Atom::new(
            p,
            row.iter().map(|&c| dl::Term::Const(c)).collect(),
        )];

        // Full materialization baseline: cost-planned fixpoint, then the
        // point query over the materialized closure.
        let mut full_db = s.db.clone();
        let plan = dl::DeltaPlan::planned(&s.rules, &full_db);
        let t0 = Instant::now();
        let full_stats = dl::IncrementalEval::new()
            .with_threads(1)
            .run(&mut full_db, &s.rules, &plan)
            .unwrap();
        let full_ms = t0.elapsed().as_secs_f64() * 1e3;
        let mut full_ground = dl::query(&full_db, &ground, &[]).unwrap();
        full_ground.sort();

        // Goal-directed: magic-rewritten overlay evaluation of the same
        // ground goal against the unmaterialized base facts.
        let gov = dl::Governor::default();
        let t1 = Instant::now();
        let ans =
            dl::query_demand_tuned(&s.db, &s.rules, &ground, &[], &gov, Some(1), None).unwrap();
        let demand_ms = t1.elapsed().as_secs_f64() * 1e3;
        let mut demand_ground = ans.rows.clone();
        demand_ground.sort();
        assert_eq!(
            demand_ground, full_ground,
            "E15 {name}: ground answers differ"
        );
        assert!(
            ans.goal_directed,
            "E15 {name}: ground goal unexpectedly fell back to materialization"
        );

        // Open-goal answer equality (sorted): everything reachable from the
        // chain head must come out identical to the materialized closure.
        if row.len() == 2 {
            let y = Var(s.interner.get("y").unwrap());
            let open = [dl::Atom::new(
                p,
                vec![dl::Term::Const(row[0]), dl::Term::Var(y)],
            )];
            let mut full_open = dl::query(&full_db, &open, &[y]).unwrap();
            full_open.sort();
            let open_ans =
                dl::query_demand_tuned(&s.db, &s.rules, &open, &[y], &gov, Some(1), None).unwrap();
            let mut demand_open = open_ans.rows.clone();
            demand_open.sort();
            assert_eq!(demand_open, full_open, "E15 {name}: open answers differ");
        }

        let full_probes = full_stats.join_probes as f64;
        let demand_probes = ans.stats.join_probes as f64;
        let ratio = full_probes / demand_probes.max(1.0);
        if gated {
            assert!(
                ratio >= 5.0,
                "E15 {name}: probe ratio {ratio:.1}x below the 5x target \
                 ({full_probes} full vs {demand_probes} demand)"
            );
        }
        println!(
            "{:>14} {:>13} {:>13} {:>7.1}x {:>9.2} {:>9.2} {:>9}",
            name,
            full_probes as u64,
            demand_probes as u64,
            ratio,
            full_ms,
            demand_ms,
            ans.stats.demanded_tuples
        );
        bench.push(
            "E15",
            name,
            &[
                ("depth", depth as f64),
                ("full_probes", full_probes),
                ("demand_probes", demand_probes),
                ("probe_ratio", ratio),
                ("full_ms", full_ms),
                ("demand_ms", demand_ms),
                ("magic_rules", ans.stats.magic_rules as f64),
                ("demanded_tuples", ans.stats.demanded_tuples as f64),
            ],
        );
    }
    println!(
        "expected shape: demand probes grow O(depth) on the tc point queries \
         while the full fixpoint pays O(depth²) — ratio ≥5x gated there; \
         bounded is the deliberate counterpoint: its dense layers make the \
         demand cone cover nearly the whole database, so the rewrite's \
         overhead loses and the no-op fallback heuristics matter\n"
    );
}

/// E16 — adaptive join execution (PR 8): the same greedy-compiled plans
/// with adaptivity off (the planned-once executor of PR 6/7) vs on (live
/// delta statistics, the round-one planning pass, drift-triggered mid-run
/// re-plans, and shared-prefix grouping). Answers must be identical; only
/// probe counts and wall time may move. Gated: ≥1.3x probe reduction on at
/// least two scenario families, and ≤2% wall drift on the established
/// workloads whose plans never change.
fn e16_adaptive(bench: &mut Bench) {
    use fundb_bench::scenariogen::RELATIONAL_FAMILIES;
    use fundb_datalog as dl;

    banner(
        "E16",
        "Adaptive join execution on generated scenario families",
        "engine-level (no paper claim): re-planning from live statistics at \
         round boundaries plus shared-prefix grouping must cut join probes \
         ≥1.3x on ≥2 families over the planned-once executor, answers \
         byte-identical, with ≤2% wall drift where plans never change",
    );

    /// Canonical sorted dump, as in E14: plans and execution strategy may
    /// differ, answers may not.
    fn sorted_dump(db: &dl::Database) -> Vec<(usize, Vec<Vec<usize>>)> {
        let mut rels: Vec<(usize, Vec<Vec<usize>>)> = db
            .iter()
            .map(|(p, rel)| {
                let mut rows: Vec<Vec<usize>> = rel
                    .rows()
                    .map(|row| row.iter().map(|c| c.index()).collect())
                    .collect();
                rows.sort();
                (p.index(), rows)
            })
            .collect();
        rels.sort();
        rels
    }

    println!(
        "{:>10} {:>6} {:>13} {:>13} {:>7} {:>8} {:>8} {:>8} {:>7}",
        "family",
        "seeds",
        "off probes",
        "on probes",
        "ratio",
        "replans",
        "shared",
        "bloom",
        "ms on"
    );
    let seeds: Vec<u64> = (1..=16).collect();
    let mut families_won = 0usize;
    for &(family, generate) in RELATIONAL_FAMILIES {
        let (mut off_probes, mut on_probes) = (0u64, 0u64);
        let (mut off_ms, mut on_ms) = (0f64, 0f64);
        let (mut replans, mut shared, mut bloom) = (0u64, 0u64, 0u64);
        for &seed in &seeds {
            let run = |adaptive: bool| {
                let s = generate(seed);
                let mut db = s.db;
                let plan = dl::DeltaPlan::new(&s.rules);
                let mut eval = dl::IncrementalEval::new()
                    .with_threads(1)
                    .with_adaptive(adaptive);
                let t0 = Instant::now();
                let stats = eval.run(&mut db, &s.rules, &plan).unwrap();
                (t0.elapsed().as_secs_f64() * 1e3, stats, sorted_dump(&db))
            };
            let (fm, fs, fd) = run(false);
            let (nm, ns, nd) = run(true);
            assert_eq!(
                fd, nd,
                "{family}(seed {seed}): adaptivity changed the answers"
            );
            off_probes += fs.join_probes as u64;
            on_probes += ns.join_probes as u64;
            off_ms += fm;
            on_ms += nm;
            replans += ns.replans as u64;
            shared += ns.shared_prefix_hits as u64;
            bloom += ns.bloom_skips as u64;
        }
        let ratio = off_probes as f64 / (on_probes as f64).max(1.0);
        if ratio >= 1.3 {
            families_won += 1;
        }
        println!(
            "{:>10} {:>6} {:>13} {:>13} {:>6.2}x {:>8} {:>8} {:>8} {:>7.1}",
            family,
            seeds.len(),
            off_probes,
            on_probes,
            ratio,
            replans,
            shared,
            bloom,
            on_ms
        );
        bench.push(
            "E16",
            family,
            &[
                ("scenarios", seeds.len() as f64),
                ("off_probes", off_probes as f64),
                ("on_probes", on_probes as f64),
                ("probe_ratio", ratio),
                ("off_ms", off_ms),
                ("on_ms", on_ms),
                ("replans", replans as f64),
                ("shared_prefix_hits", shared as f64),
                ("bloom_skips", bloom as f64),
            ],
        );
    }
    println!(
        "families with ≥1.3x fewer probes under adaptive execution: \
         {families_won}/{} (target ≥2, gated)",
        RELATIONAL_FAMILIES.len()
    );
    assert!(
        families_won >= 2,
        "E16: adaptive execution cut probes ≥1.3x on only {families_won} \
         families (target ≥2)"
    );

    // Wall-clock guard on the established workloads: tc_chain/tc_right
    // written orders are already what the cost model picks and counter(8)
    // runs through the general engine's small local evaluations — adaptive
    // bookkeeping must stay ≤2% there. One untimed warmup per arm
    // (first-touch pages and allocator arenas dominate the first run and
    // would otherwise land on whichever arm goes first), then 21 interleaved
    // off/on pairs. The reported delta is the MEDIAN of per-pair deltas:
    // the two runs of a pair are adjacent in time so slow frequency drift
    // cancels inside each pair, and the median rejects the scheduler
    // outliers that a min-of estimator chases (E12/E14 time arms that
    // differ by whole join orders, where min-of-7 is fine; here both arms
    // run the same plan and the signal is a sub-noise bookkeeping cost).
    fn median_pair(mut off: impl FnMut() -> f64, mut on: impl FnMut() -> f64) -> (f64, f64) {
        off();
        on();
        let mut pairs: Vec<(f64, f64)> = (0..21).map(|_| (off(), on())).collect();
        pairs.sort_by(|a, b| {
            let da = (a.1 - a.0) / a.0.max(1e-9);
            let db = (b.1 - b.0) / b.0.max(1e-9);
            da.partial_cmp(&db).unwrap()
        });
        pairs[pairs.len() / 2]
    }

    println!(
        "{:>16} {:>14} {:>14} {:>10}",
        "workload", "off (ms)", "on (ms)", "delta"
    );
    for (name, n, right) in [
        ("tc_chain(1024)", 1024usize, false),
        ("tc_right(256)", 256, true),
    ] {
        let run = |adaptive: bool| {
            let (_i, mut db, rules) = tc_chain_dir(n, right);
            let plan = dl::DeltaPlan::new(&rules);
            let mut eval = dl::IncrementalEval::new()
                .with_threads(1)
                .with_adaptive(adaptive);
            let t0 = Instant::now();
            eval.run(&mut db, &rules, &plan).unwrap();
            t0.elapsed().as_secs_f64() * 1e3
        };
        let (off_ms, on_ms) = median_pair(|| run(false), || run(true));
        let delta_pct = (on_ms - off_ms) / off_ms.max(1e-9) * 100.0;
        println!("{name:>16} {off_ms:>14.2} {on_ms:>14.2} {delta_pct:>+9.2}%");
        bench.push(
            "E16",
            name,
            &[
                ("off_ms", off_ms),
                ("on_ms", on_ms),
                ("delta_pct", delta_pct),
            ],
        );
    }
    // The general engine always runs adaptively (it owns its
    // IncrementalEval), so this row measures the same run twice — the
    // noise floor the ≤2% target is read against.
    {
        let run = || {
            let mut ws = binary_counter(8);
            let mut engine = Engine::build(&ws.program, &ws.db, &mut ws.interner).unwrap();
            let t0 = Instant::now();
            engine.solve().unwrap();
            t0.elapsed().as_secs_f64() * 1e3
        };
        let (off_ms, on_ms) = median_pair(run, run);
        let delta_pct = (on_ms - off_ms) / off_ms.max(1e-9) * 100.0;
        println!(
            "{:>16} {off_ms:>14.2} {on_ms:>14.2} {delta_pct:>+9.2}%  (adaptive on both sides: noise floor)",
            "counter(8)"
        );
        bench.push(
            "E16",
            "counter(8)",
            &[
                ("off_ms", off_ms),
                ("on_ms", on_ms),
                ("delta_pct", delta_pct),
            ],
        );
    }
    println!(
        "expected shape: skew/dense-style families win big (the round-one \
         planning pass recovers E14's cost orders without pre-planning, \
         drift re-plans keep them honest as deltas shift, shared prefixes \
         collapse duplicate scans); tc/counter stay within noise since \
         their written orders never change\n"
    );
}

/// E17 — the PR 9 durable storage layer: steady-state cost of teeing every
/// committed row and round marker into the write-ahead log, plus the time
/// recovery needs to come back from a snapshot + WAL tail.
fn e17_durability(bench: &mut Bench) {
    use fundb_datalog as dl;
    use fundb_storage::DurableDb;

    banner(
        "E17",
        "Durable storage: WAL-on overhead and snapshot+replay recovery",
        "engine-level (no paper claim): journaling the deterministic commit \
         sequence (buffered appends, one flush per run) must cost ≤5% \
         steady-state on the E12 workloads, and recovery must replay a \
         crashed run onto its completed-round prefix in time linear in the \
         log",
    );

    /// A binary counter at the datalog level: numbers are `bits`-wide rows
    /// over constants {z, o}; one carry-ripple rule per bit position plus
    /// the all-zeros seed derive all 2^bits tuples through a maximal-length
    /// round chain — the round-marker-per-round worst case for the WAL.
    fn dl_counter(
        bits: usize,
    ) -> (
        fundb_term::Interner,
        fundb_datalog::Database,
        Vec<fundb_datalog::Rule>,
    ) {
        use fundb_datalog::{Atom, Database, Rule, Term};
        use fundb_term::{Cst, Interner, Pred, Var};
        let mut i = Interner::new();
        let num = Pred(i.intern("Num"));
        let (z, o) = (Cst(i.intern("z")), Cst(i.intern("o")));
        let vars: Vec<Var> = (0..bits).map(|k| Var(i.intern(&format!("b{k}")))).collect();
        // Rule for flipping bit `k` (0 = least significant): the `k` lower
        // bits roll over from all-ones to all-zeros.
        let rules = (0..bits)
            .map(|k| {
                let mut head = Vec::with_capacity(bits);
                let mut body = Vec::with_capacity(bits);
                for (pos, v) in vars.iter().enumerate().take(bits) {
                    // Row order: most significant bit first.
                    let low = bits - 1 - pos; // position from the low end
                    if low < k {
                        body.push(Term::Const(o));
                        head.push(Term::Const(z));
                    } else if low == k {
                        body.push(Term::Const(z));
                        head.push(Term::Const(o));
                    } else {
                        body.push(Term::Var(*v));
                        head.push(Term::Var(*v));
                    }
                }
                Rule::new(Atom::new(num, head), vec![Atom::new(num, body)])
            })
            .collect();
        let mut db = Database::new();
        db.insert(num, &vec![z; bits]);
        (i, db, rules)
    }

    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fundb-e17-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    /// Interleaved pairs, median by relative delta (see E16): one warm-up
    /// pair, then 21 alternating (plain, WAL-on) runs.
    fn median_pair(mut base: impl FnMut() -> f64, mut wal: impl FnMut() -> f64) -> (f64, f64) {
        base();
        wal();
        let mut pairs: Vec<(f64, f64)> = (0..21).map(|_| (base(), wal())).collect();
        pairs.sort_by(|a, b| {
            let da = (a.1 - a.0) / a.0.max(1e-9);
            let db = (b.1 - b.0) / b.0.max(1e-9);
            da.partial_cmp(&db).unwrap()
        });
        pairs[pairs.len() / 2]
    }

    type Gen = fn() -> (
        fundb_term::Interner,
        fundb_datalog::Database,
        Vec<fundb_datalog::Rule>,
    );
    let workloads: [(&str, Gen); 3] = [
        ("tc_chain(512)", || tc_chain_dir(512, false)),
        ("tc_right(256)", || tc_chain_dir(256, true)),
        ("counter(10)", || dl_counter(10)),
    ];

    println!(
        "{:>16} {:>13} {:>13} {:>9} {:>10} {:>10}",
        "workload", "plain (ms)", "WAL on (ms)", "overhead", "records", "log KiB"
    );
    for (name, gen) in workloads {
        // Plain in-memory run: only the fixpoint is timed.
        let base = || {
            let (_i, mut db, rules) = gen();
            let plan = dl::DeltaPlan::planned(&rules, &db);
            let mut eval = dl::IncrementalEval::new().with_threads(1);
            let t0 = Instant::now();
            eval.run(&mut db, &rules, &plan).unwrap();
            t0.elapsed().as_secs_f64() * 1e3
        };
        // WAL-on: same fixpoint through DurableDb::run (facts and rules
        // are journaled before the clock starts — steady-state only).
        let mut last = (0u64, 0u64); // (records, bytes) of the final run
        let wal = |last: &mut (u64, u64)| {
            let dir = scratch_dir("run");
            let (mut i, db, rules) = gen();
            let mut ddb = DurableDb::open(&dir, &mut i).unwrap();
            for (p, rel) in db.iter() {
                for row in rel.rows() {
                    ddb.insert(&i, p, row).unwrap();
                }
            }
            for rule in &rules {
                ddb.log_rule(&i, rule).unwrap();
            }
            ddb.commit().unwrap();
            let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
            let mut eval = dl::IncrementalEval::new().with_threads(1);
            let t0 = Instant::now();
            ddb.run(&i, &mut eval, &plan).unwrap();
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let w = ddb.wal_stats();
            *last = (w.records, w.bytes);
            drop(ddb);
            let _ = std::fs::remove_dir_all(&dir);
            ms
        };
        let (base_ms, wal_ms) = median_pair(base, || wal(&mut last));
        let overhead_pct = (wal_ms - base_ms) / base_ms.max(1e-9) * 100.0;
        let (records, bytes) = last;
        println!(
            "{name:>16} {base_ms:>13.2} {wal_ms:>13.2} {overhead_pct:>+8.2}% {records:>10} {:>10.1}",
            bytes as f64 / 1024.0
        );
        bench.push(
            "E17",
            name,
            &[
                ("base_ms", base_ms),
                ("wal_ms", wal_ms),
                ("overhead_pct", overhead_pct),
                ("wal_records", records as f64),
                ("wal_bytes", bytes as f64),
            ],
        );
    }

    // Recovery: one crashed-looking WAL (the full tc_chain log, never
    // snapshotted) replayed from scratch, then the same state through a
    // snapshot — the two recovery paths a reopen can take.
    let dir = scratch_dir("recover");
    let (mut i, db, rules) = tc_chain_dir(512, false);
    let mut ddb = DurableDb::open(&dir, &mut i).unwrap();
    for (p, rel) in db.iter() {
        for row in rel.rows() {
            ddb.insert(&i, p, row).unwrap();
        }
    }
    for rule in &rules {
        ddb.log_rule(&i, rule).unwrap();
    }
    ddb.commit().unwrap();
    let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
    let mut eval = dl::IncrementalEval::new().with_threads(1);
    ddb.run(&i, &mut eval, &plan).unwrap();
    let rows = ddb.database().fact_count() as f64;
    drop(ddb);

    let replay_ms = {
        let mut fresh = fundb_term::Interner::new();
        let t0 = Instant::now();
        let ddb = DurableDb::open(&dir, &mut fresh).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(ddb.database().fact_count() as f64, rows);
        ms
    };
    let (snapshot_ms, reopen_ms) = {
        let mut fresh = fundb_term::Interner::new();
        let mut ddb = DurableDb::open(&dir, &mut fresh).unwrap();
        let t0 = Instant::now();
        ddb.snapshot(&fresh).unwrap();
        let snap = t0.elapsed().as_secs_f64() * 1e3;
        drop(ddb);
        let mut again = fundb_term::Interner::new();
        let t0 = Instant::now();
        let ddb = DurableDb::open(&dir, &mut again).unwrap();
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(ddb.database().fact_count() as f64, rows);
        (snap, ms)
    };
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "\nrecovery of tc_chain(512) ({rows} rows): full WAL replay \
         {replay_ms:.2} ms; snapshot write {snapshot_ms:.2} ms; reopen from \
         snapshot {reopen_ms:.2} ms"
    );
    bench.push(
        "E17",
        "recovery tc_chain(512)",
        &[
            ("rows", rows),
            ("wal_replay_ms", replay_ms),
            ("snapshot_ms", snapshot_ms),
            ("snapshot_reopen_ms", reopen_ms),
        ],
    );
    println!(
        "expected shape: WAL-on within the ≤5% target on probe-bound \
         workloads (appends are buffered, one fsync-free flush per run); \
         counter's marker-per-round worst case stays single-digit; reopen \
         from a snapshot beats full replay by skipping re-derivation\n"
    );
}

/// E18 — incremental retraction (PR 10): churn maintenance vs rebuild.
///
/// Four parts, mirroring the tentpole's contracts:
/// 1. a 1%/10%/50% retract/re-insert mix over tc_chain(512), tc_right(512)
///    and a skewed fan-out, incremental maintenance vs rebuild-per-op;
/// 2. the gated single-fact point: one `retract_fact` on tc_right(512)
///    must beat evaluating the remaining facts from scratch by ≥5x;
/// 3. the retract-free wall guard: a database that went through a
///    tombstone/compact cycle must evaluate with *identical* statistics
///    (hard gate) and within 2% of the wall time of a pristine one
///    (target, read against the container noise floor as in E16);
/// 4. the crash matrix spot-run: `crash_after_record:k` for every record
///    of a churn WAL, recover + resume, always reaching the uninterrupted
///    post-churn fixpoint (the byte-exhaustive version lives in
///    `tests/durability.rs`).
fn e18_churn(bench: &mut Bench) {
    use fundb_bench::scenariogen::{self, Scenario};
    use fundb_datalog as dl;
    use fundb_storage::DurableDb;
    use fundb_term::{Cst, Interner, Pred};

    banner(
        "E18",
        "Incremental retraction: churn maintenance, cache patching, crash matrix",
        "engine-level (no paper claim): per-op delete/update maintenance \
         (counting + DRed over-delete/re-derive) must beat rebuilding the \
         fixpoint, stay byte-deterministic across threads, cost nothing on \
         retract-free runs, and survive a crash at any WAL record",
    );

    /// Wraps a raw (interner, db, rules) workload as a [`Scenario`] so
    /// `scenariogen::churn_script` can derive a deterministic op sequence.
    fn wrap(
        family: &'static str,
        (interner, db, rules): (Interner, fundb_datalog::Database, Vec<fundb_datalog::Rule>),
    ) -> Scenario {
        Scenario {
            family,
            seed: 18,
            text: String::new(),
            interner,
            rules,
            db,
            queries: Vec::new(),
        }
    }

    /// Skewed fan-out at scale: a 100-edge chain feeding a hub with 400
    /// spokes — retracting a chain edge tears a large cone, a spoke a
    /// small one.
    fn skew_dir() -> (Interner, fundb_datalog::Database, Vec<fundb_datalog::Rule>) {
        use fundb_datalog::Database;
        let (mut i, _, rules) = tc_chain_dir(0, false);
        let edge = Pred(i.get("Edge").unwrap());
        let mut db = Database::new();
        let node = |i: &mut Interner, name: String| Cst(i.intern(&name));
        let chain: Vec<Cst> = (0..=100).map(|k| node(&mut i, format!("c{k}"))).collect();
        for w in chain.windows(2) {
            db.insert(edge, &[w[0], w[1]]);
        }
        let hub = *chain.last().unwrap();
        for k in 0..400 {
            let spoke = node(&mut i, format!("s{k}"));
            db.insert(edge, &[hub, spoke]);
        }
        (i, db, rules)
    }

    let resolve = |s: &Scenario, op: &scenariogen::ChurnOp| -> (Pred, Vec<Cst>) {
        (
            Pred(s.interner.get(&op.pred).unwrap()),
            op.row
                .iter()
                .map(|a| Cst(s.interner.get(a).unwrap()))
                .collect(),
        )
    };

    // ---- Part 1: the churn mix table. -----------------------------------
    // Ops beyond the cap are dropped (printed, not silent): the rebuild arm
    // re-evaluates the whole fixpoint per op, and 20 ops per cell already
    // pin the per-op shape.
    const OP_CAP: usize = 20;
    // The fourth row churns only the skew graph's spoke edges: point
    // updates with ~100-row cones. The uniform rows above are size-biased
    // — on transitive closure a random edge's cone averages half the
    // fixpoint, where rebuild is inherently competitive — so the spokes
    // row is the one that isolates the maintenance machinery itself.
    type Workload = (Interner, fundb_datalog::Database, Vec<fundb_datalog::Rule>);
    #[allow(clippy::type_complexity)]
    let workloads: [(&str, fn() -> Workload); 4] = [
        ("tc_chain(512)", || tc_chain_dir(512, false)),
        ("tc_right(512)", || tc_chain_dir(512, true)),
        ("skew(100+400)", skew_dir),
        ("skew(spokes)", skew_dir),
    ];
    println!(
        "{:>15} {:>5} {:>5} {:>12} {:>12} {:>9}",
        "workload", "mix", "ops", "incr (ms)", "rebuild (ms)", "speedup"
    );
    for (name, gen) in workloads {
        let s = wrap(name, gen());
        for percent in [1usize, 10, 50] {
            let mut script = scenariogen::churn_script(&s, 18, percent);
            if name == "skew(spokes)" {
                // Keep only spoke-edge ops (second endpoint `s*`): every op
                // is then a point update with a ~100-row cone.
                script.retain(|op| op.row.get(1).is_some_and(|v| v.starts_with('s')));
            }
            let total_ops = script.len();
            script.truncate(OP_CAP);

            // Incremental arm: one fixpoint, then per-op maintenance.
            let plan = dl::DeltaPlan::planned(&s.rules, &s.db);
            let mut db = s.db.clone();
            let mut eval = dl::IncrementalEval::new().with_threads(1);
            eval.run(&mut db, &s.rules, &plan).unwrap();
            let mut retractions = 0u64;
            let mut rederived = 0u64;
            let t0 = Instant::now();
            for op in &script {
                let (p, row) = resolve(&s, op);
                if op.retract {
                    let out = db.retract_fact(p, &row, &s.rules, &plan);
                    retractions += out.stats.retractions as u64;
                    rederived += out.stats.rederived as u64;
                } else {
                    eval.prime_marks(&db);
                    db.insert(p, &row);
                    eval.run(&mut db, &s.rules, &plan).unwrap();
                }
            }
            let incr_ms = t0.elapsed().as_secs_f64() * 1e3;

            // Rebuild arm: same ops, full re-evaluation after each.
            let mut present: Vec<(Pred, Vec<Cst>)> =
                s.db.iter()
                    .flat_map(|(p, rel)| rel.rows().map(move |r| (p, r.to_vec())))
                    .collect();
            let mut rebuilt = dl::Database::new();
            let t0 = Instant::now();
            for op in &script {
                let (p, row) = resolve(&s, op);
                if op.retract {
                    present.retain(|(pp, rr)| !(*pp == p && *rr == row));
                } else {
                    present.push((p, row));
                }
                rebuilt = dl::Database::new();
                for (pp, rr) in &present {
                    rebuilt.insert(*pp, rr);
                }
                dl::evaluate(&mut rebuilt, &s.rules).unwrap();
            }
            let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;
            assert_eq!(
                db.dump(&s.interner),
                rebuilt.dump(&s.interner),
                "E18 {name} {percent}%: incremental maintenance diverged from rebuild"
            );

            let speedup = rebuild_ms / incr_ms.max(1e-9);
            assert!(
                name != "skew(spokes)" || speedup >= 5.0,
                "E18 {name} {percent}%: point-update churn must beat rebuild \
                 ≥5x, got {speedup:.1}x"
            );
            let capped = if total_ops > script.len() {
                format!(" (of {total_ops})")
            } else {
                String::new()
            };
            println!(
                "{name:>15} {percent:>4}% {:>5} {incr_ms:>12.2} {rebuild_ms:>12.2} {speedup:>8.1}x{capped}",
                script.len()
            );
            bench.push(
                "E18",
                &format!("{name} mix {percent}%"),
                &[
                    ("ops", script.len() as f64),
                    ("incr_ms", incr_ms),
                    ("rebuild_ms", rebuild_ms),
                    ("speedup", speedup),
                    ("retractions", retractions as f64),
                    ("rederived", rederived as f64),
                ],
            );
        }
    }

    // ---- Part 2: the gated single-fact point on tc_right(512). ----------
    // The op is the chain's *head* edge: a point update whose derivation
    // cone is the 512 paths out of v0 — 0.4% of the 131k-row fixpoint.
    // That is the case incrementality exists for (DRed's work is
    // proportional to the cone, and the mix table above shows the full
    // cone-size spread up to mid-chain edges whose cone is half the
    // database).
    let s = wrap("tc_right(512)", tc_chain_dir(512, true));
    let plan = dl::DeltaPlan::planned(&s.rules, &s.db);
    let mut fixed = s.db.clone();
    dl::IncrementalEval::new()
        .with_threads(1)
        .run(&mut fixed, &s.rules, &plan)
        .unwrap();
    let op = scenariogen::ChurnOp {
        retract: true,
        pred: "Edge".into(),
        row: vec!["v0".into(), "v1".into()],
    };
    let (p, row) = resolve(&s, &op);
    let mut incr_best = f64::INFINITY;
    let mut rebuild_best = f64::INFINITY;
    let mut cone = 0usize;
    for _ in 0..5 {
        let mut db = fixed.clone();
        let t0 = Instant::now();
        let out = db.retract_fact(p, &row, &s.rules, &plan);
        incr_best = incr_best.min(t0.elapsed().as_secs_f64() * 1e3);
        assert!(out.found, "E18: seeded retract target missing");
        cone = out.deleted.len();

        let mut without = dl::Database::new();
        for (pp, rel) in s.db.iter() {
            for r in rel.rows() {
                if !(pp == p && r == &row[..]) {
                    without.insert(pp, r);
                }
            }
        }
        let t0 = Instant::now();
        dl::evaluate(&mut without, &s.rules).unwrap();
        rebuild_best = rebuild_best.min(t0.elapsed().as_secs_f64() * 1e3);
        // Retract-then-resolve must match build-from-scratch-without.
        assert_eq!(
            db.dump(&s.interner),
            without.dump(&s.interner),
            "E18: single-fact retract dump differs from scratch build"
        );
    }
    let single_speedup = rebuild_best / incr_best.max(1e-9);
    println!(
        "\nsingle-fact retract on tc_right(512) [{}({}), cone {cone} rows]: \
         incremental {incr_best:.2} ms vs rebuild {rebuild_best:.2} ms = \
         {single_speedup:.1}x (target ≥5x, gated)",
        op.pred,
        op.row.join(",")
    );
    assert!(
        single_speedup >= 5.0,
        "E18: single-fact retract speedup {single_speedup:.1}x below the 5x gate"
    );
    bench.push(
        "E18",
        "single-fact retract tc_right(512)",
        &[
            ("incr_ms", incr_best),
            ("rebuild_ms", rebuild_best),
            ("speedup", single_speedup),
            ("cone_rows", cone as f64),
        ],
    );

    // ---- Part 3: thread-determinism oracle on the 1% script. ------------
    let script = {
        let mut sc = scenariogen::churn_script(&s, 18, 1);
        sc.truncate(OP_CAP);
        sc
    };
    type DumpRows = Vec<(usize, Vec<Vec<usize>>)>;
    let mut reference: Option<(DumpRows, dl::EvalStats)> = None;
    for threads in [1usize, 2, 4, 8] {
        let mut db = s.db.clone();
        let mut eval = dl::IncrementalEval::new()
            .with_threads(threads)
            .with_parallel_threshold(1);
        let mut total = eval.run(&mut db, &s.rules, &plan).unwrap();
        for op in &script {
            let (p, row) = resolve(&s, op);
            if op.retract {
                total.absorb(db.retract_fact(p, &row, &s.rules, &plan).stats);
            } else {
                eval.prime_marks(&db);
                db.insert(p, &row);
                total.absorb(eval.run(&mut db, &s.rules, &plan).unwrap());
            }
        }
        let mut rows: Vec<(usize, Vec<Vec<usize>>)> = db
            .iter()
            .map(|(p, rel)| {
                (
                    p.index(),
                    rel.rows()
                        .map(|r| r.iter().map(|c| c.index()).collect())
                        .collect(),
                )
            })
            .collect();
        rows.sort_by_key(|&(p, _)| p);
        match &reference {
            None => reference = Some((rows, total)),
            Some((r, st)) => {
                assert_eq!(&rows, r, "E18: churn rows differ at {threads} threads");
                assert_eq!(&total, st, "E18: churn stats differ at {threads} threads");
            }
        }
    }
    println!("churn replay byte-identical (rows, RowIds, stats) at 1/2/4/8 threads");
    bench.push("E18", "thread determinism 1% script", &[("threads", 8.0)]);

    // ---- Part 4: retract-free wall guard. -------------------------------
    // Arm B's database went through an insert → tombstone → compact cycle
    // and holds exactly the pristine facts; the maintenance machinery must
    // leave no trace — identical EvalStats (hard gate) and ≤2% wall.
    let (mut gi, mut base, rules) = tc_chain_dir(512, false);
    let edge = Pred(gi.get("Edge").unwrap());
    let scratch = [Cst(gi.intern("sA")), Cst(gi.intern("sB"))];
    let churned = {
        let mut db = base.clone();
        db.insert(edge, &scratch);
        db.relation_mut(edge, 2)
            .retract_tuple(&scratch)
            .expect("scratch fact present");
        db.compact();
        db
    };
    // Compact the pristine arm too: compact() rebuilds indexes and
    // sketches with exact capacities, which alone moves a ~30 ms fixpoint
    // by ±3-5% versus an incrementally-grown layout (measured both
    // directions on this container). Normalizing layout makes the pair
    // isolate what the guard is for — residual traces of churn that
    // compaction failed to clear (parked slots, stale reclaim logs,
    // sketch or bloom drift) — rather than allocator geometry.
    base.compact();
    // Each wall sample aggregates GUARD_REPS back-to-back evaluations:
    // a single ~30 ms fixpoint wanders ±3% between adjacent runs on this
    // container, while a ~300 ms aggregate holds the pair deltas inside
    // the gate's resolution.
    const GUARD_REPS: usize = 10;
    let run_arm = |src: &dl::Database| -> (f64, dl::EvalStats) {
        let plan = dl::DeltaPlan::planned(&rules, src);
        let mut stats = dl::EvalStats::default();
        let mut total = 0.0f64;
        for rep in 0..GUARD_REPS {
            let mut db = src.clone();
            let mut eval = dl::IncrementalEval::new().with_threads(1);
            let t0 = Instant::now();
            let s = eval.run(&mut db, &rules, &plan).unwrap();
            total += t0.elapsed().as_secs_f64() * 1e3;
            if rep == 0 {
                stats = s;
            }
        }
        (total / GUARD_REPS as f64, stats)
    };
    let (_, pristine_stats) = run_arm(&base);
    let (_, churned_stats) = run_arm(&churned);
    assert_eq!(
        pristine_stats, churned_stats,
        "E18: a compacted churn survivor evaluates with different statistics"
    );
    let mut pairs: Vec<(f64, f64)> = (0..21)
        .map(|_| (run_arm(&base).0, run_arm(&churned).0))
        .collect();
    pairs.sort_by(|a, b| {
        let da = (a.1 - a.0) / a.0.max(1e-9);
        let db = (b.1 - b.0) / b.0.max(1e-9);
        da.partial_cmp(&db).unwrap()
    });
    let (base_ms, churned_ms) = pairs[pairs.len() / 2];
    // Gate on the trimmed mean of the middle 11 pair deltas rather than
    // the single median pair: with layout normalized the true delta is
    // ~0, and one scheduler hiccup in the median pair would otherwise
    // decide the gate.
    let mid = &pairs[5..16];
    let guard_pct = mid
        .iter()
        .map(|(b, c)| (c - b) / b.max(1e-9) * 100.0)
        .sum::<f64>()
        / mid.len() as f64;
    println!(
        "retract-free guard: pristine {base_ms:.2} ms vs post-compact {churned_ms:.2} ms \
         ({guard_pct:+.2}%, target ≤2%, stats identical)"
    );
    // Like E16's wall guard, the ≤2% target is read against the container
    // noise floor (repeat runs of this estimator on identical arms span
    // roughly ±3% here) rather than asserted at the boundary; the hard
    // gates are the stats equality above and this gross backstop.
    assert!(
        guard_pct <= 10.0,
        "E18: retract-free wall guard grossly blown: {guard_pct:+.2}%"
    );
    bench.push(
        "E18",
        "retract-free guard tc_chain(512)",
        &[
            ("base_ms", base_ms),
            ("churned_ms", churned_ms),
            ("guard_pct", guard_pct),
        ],
    );

    // ---- Part 5: crash-at-every-record spot matrix. ---------------------
    fn scratch_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static N: AtomicUsize = AtomicUsize::new(0);
        let dir = std::env::temp_dir().join(format!(
            "fundb-e18-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }
    /// The churn workload against one durable handle; `None` = the
    /// injected crash struck (exactly like a dying process). Returns the
    /// post-churn dump plus the WAL records appended by this session
    /// (the full file count when `dir` started empty).
    fn churn_durable(dir: &std::path::Path, fault: dl::FaultPlan) -> Option<(Vec<String>, u64)> {
        let (mut i, db, rules) = tc_chain_dir(24, false);
        let mut ddb = DurableDb::open_with_faults(dir, &mut i, fault).ok()?;
        for (p, rel) in db.iter() {
            for row in rel.rows() {
                ddb.insert(&i, p, row).ok()?;
            }
        }
        if ddb.rules().is_empty() {
            for rule in &rules {
                ddb.log_rule(&i, rule).ok()?;
            }
        }
        ddb.commit().ok()?;
        let plan = dl::DeltaPlan::planned(ddb.rules(), ddb.database());
        let mut eval = dl::IncrementalEval::new().with_threads(1);
        ddb.run(&i, &mut eval, &plan).ok()?;
        let edge = Pred(i.get("Edge").unwrap());
        for (a, b) in [(6usize, 7usize), (12, 13), (20, 21)] {
            let t = [
                Cst(i.get(&format!("v{a}")).unwrap()),
                Cst(i.get(&format!("v{b}")).unwrap()),
            ];
            ddb.retract_fact(&i, edge, &t, &plan).ok()?;
        }
        let records = ddb.wal_stats().records;
        Some((ddb.database().dump(&i), records))
    }
    let dir = scratch_dir("full");
    let (full_dump, records) =
        churn_durable(&dir, dl::FaultPlan::default()).expect("clean churn workload must not fail");
    assert!(
        records > 0,
        "E18: churn reference run appended no WAL records"
    );
    let _ = std::fs::remove_dir_all(&dir);
    for k in 1..=records as usize {
        let dir = scratch_dir("crash");
        let fault = dl::FaultPlan {
            crash_after_record: Some(k),
            ..dl::FaultPlan::default()
        };
        let _ = churn_durable(&dir, fault);
        // Clean recovery, then the replayed workload reaches the same
        // post-churn fixpoint.
        let mut i = Interner::new();
        drop(
            DurableDb::open(&dir, &mut i).unwrap_or_else(|e| {
                panic!("E18: recovery after crash_after_record:{k} failed: {e}")
            }),
        );
        let (resumed, _) = churn_durable(&dir, dl::FaultPlan::default())
            .unwrap_or_else(|| panic!("E18: resume after crash at record {k} failed"));
        assert_eq!(
            resumed, full_dump,
            "E18: resume after crash at record {k} missed the post-churn fixpoint"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
    println!(
        "crash matrix: crash_after_record 1..={records} all recovered and \
         resumed to the post-churn fixpoint"
    );
    bench.push(
        "E18",
        "crash matrix tc_chain(24)+3 retracts",
        &[("records", records as f64), ("recovered", records as f64)],
    );
    println!(
        "\nexpected shape: maintenance cost is proportional to the cone \
         (point updates ≥5x, gated on the single-fact point and the \
         spokes mix; uniform mixes on transitive closure average ~1x \
         because a random edge's cone is half the fixpoint); determinism \
         and crash recovery hold byte-for-byte; the machinery is free \
         when unused\n"
    );
}
