#![warn(missing_docs)]
//! Workload families for the experiment harness (see EXPERIMENTS.md).
//!
//! Each generator returns a [`Workspace`] holding a program + database whose
//! shape realizes one regime of the paper's complexity section:
//!
//! * [`rotation`] — *benign temporal family*: one fact rotates through `k`
//!   participants; the specification grows linearly in `k`.
//! * [`binary_counter`] — *adversarial temporal family*: a `w`-bit binary
//!   counter encoded with complemented bit predicates; the least fixpoint
//!   has exactly `2^w` distinct states, witnessing the exponential lower
//!   bound of Theorem 4.2 and the PSPACE-hardness flavour of Theorem 4.1.
//! * [`subset_lists`] — *adversarial functional family*: the paper's §3.4
//!   list program over `n` constants; clusters are the subsets of elements
//!   seen, so the specification is exponential in the **database** size —
//!   the data-complexity lower bound regime.
//! * [`ring_planner`] — *benign functional family*: situation-calculus
//!   planning on an `n`-cycle; clusters grow linearly in `n`.

use fundb_parser::Workspace;
use std::fmt::Write as _;

pub mod scenariogen;

/// One fact rotating through `k` participants (`Meets` with `k` students):
/// period-`k` temporal program, linear-size specification.
pub fn rotation(k: usize) -> Workspace {
    assert!(k >= 2);
    let mut src = String::from("Meets(t, x), Next(x, y) -> Meets(t+1, y).\nMeets(0, S0).\n");
    for i in 0..k {
        writeln!(src, "Next(S{i}, S{}).", (i + 1) % k).unwrap();
    }
    let mut ws = Workspace::new();
    ws.parse(&src).expect("rotation program is well-formed");
    ws
}

/// A `w`-bit binary counter over time: bit `i` flips exactly when bits
/// `0..i` are all set, giving `2^w` distinct time-point states and a lasso
/// of period `2^w`.
pub fn binary_counter(w: usize) -> Workspace {
    assert!(w >= 1);
    let mut src = String::new();
    // Bit 0 toggles every step.
    src.push_str("B0(t) -> N0(t+1).\nN0(t) -> B0(t+1).\n");
    for i in 1..w {
        // Flip when all lower bits are set.
        let all_low: Vec<String> = (0..i).map(|j| format!("B{j}(t)")).collect();
        let low = all_low.join(", ");
        writeln!(src, "{low}, B{i}(t) -> N{i}(t+1).").unwrap();
        writeln!(src, "{low}, N{i}(t) -> B{i}(t+1).").unwrap();
        // Hold when some lower bit is clear.
        for j in 0..i {
            writeln!(src, "N{j}(t), B{i}(t) -> B{i}(t+1).").unwrap();
            writeln!(src, "N{j}(t), N{i}(t) -> N{i}(t+1).").unwrap();
        }
    }
    // Initial state: all bits clear.
    for i in 0..w {
        writeln!(src, "N{i}(0).").unwrap();
    }
    let mut ws = Workspace::new();
    ws.parse(&src).expect("counter program is well-formed");
    ws
}

/// The §3.4 list-membership program over `n` constants: the congruence
/// classes are the non-empty element subsets (plus the shallow terms), so
/// the specification size is `Θ(2^n)` — exponential in the database.
pub fn subset_lists(n: usize) -> Workspace {
    assert!(n >= 1);
    let mut src = String::from(
        "P(x) -> Member(ext(0, x), x).
         P(y), Member(s, x) -> Member(ext(s, y), y).
         P(y), Member(s, x) -> Member(ext(s, y), x).\n",
    );
    for i in 0..n {
        writeln!(src, "P(E{i}).").unwrap();
    }
    let mut ws = Workspace::new();
    ws.parse(&src).expect("lists program is well-formed");
    ws
}

/// Situation-calculus planning on an `n`-cycle of positions: linear-size
/// specification (one cluster per reachable position plus the stuck
/// cluster).
pub fn ring_planner(n: usize) -> Workspace {
    assert!(n >= 2);
    let mut src =
        String::from("At(s, p1), Connected(p1, p2) -> At(move(s, p1, p2), p2).\nAt(0, P0).\n");
    for i in 0..n {
        writeln!(src, "Connected(P{i}, P{}).", (i + 1) % n).unwrap();
    }
    let mut ws = Workspace::new();
    ws.parse(&src).expect("planner program is well-formed");
    ws
}

#[cfg(test)]
mod tests {
    use super::*;
    use fundb_temporal::TemporalSpec;

    #[test]
    fn rotation_period_is_k() {
        for k in [2usize, 3, 5] {
            let mut ws = rotation(k);
            let spec = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
            assert_eq!(spec.lambda(), k, "rotation({k})");
        }
    }

    #[test]
    fn counter_period_is_two_to_the_w() {
        for w in [1usize, 2, 3, 4] {
            let mut ws = binary_counter(w);
            let spec = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
            assert_eq!(spec.lambda(), 1 << w, "binary_counter({w})");
        }
    }

    #[test]
    fn counter_counts() {
        let mut ws = binary_counter(3);
        let spec = TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap();
        for t in 0..32u64 {
            for bit in 0..3usize {
                let pred = fundb_term::Pred(ws.interner.get(&format!("B{bit}")).unwrap());
                let expected = (t >> bit) & 1 == 1;
                assert_eq!(spec.holds(pred, t, &[]), expected, "bit {bit} at {t}");
            }
        }
    }

    #[test]
    fn subset_lists_clusters_are_exponential() {
        // Clusters after minimization: the 2^n - 1 non-empty subsets + root.
        for n in [1usize, 2, 3] {
            let mut ws = subset_lists(n);
            let spec = ws.graph_spec().unwrap().minimized();
            assert_eq!(spec.cluster_count(), (1 << n) - 1 + 1, "subset_lists({n})");
        }
    }

    #[test]
    fn ring_planner_clusters_are_linear() {
        for n in [2usize, 4, 6] {
            let mut ws = ring_planner(n);
            let spec = ws.graph_spec().unwrap().minimized();
            // One cluster per position + the root + the stuck cluster.
            assert!(
                spec.cluster_count() <= n + 2,
                "ring_planner({n}) gave {}",
                spec.cluster_count()
            );
        }
    }
}
