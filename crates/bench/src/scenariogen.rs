//! Seeded, reproducible adversarial scenario families for differential
//! fuzzing and the E14 planner experiment.
//!
//! Every hand-written workload in this crate (chains, counters, rotations)
//! presents the join compiler with the same few friendly shapes. The
//! families here generate the shapes those workloads never produce —
//! skewed fan-out, dense near-cross-products, cyclic rule dependencies,
//! bounded-derivation-depth layerings, and temporal lassos — each from a
//! single `u64` seed, so a failing case is reproducible by its seed alone.
//!
//! Each relational scenario is emitted **twice from the same seed**: once
//! as datalog-level rules + facts (for the evaluator lattice: compiled,
//! interpreted, naive, greedy-planned vs cost-planned, governed) and once
//! as concrete syntax (for the parser → engine → frozen-spec serving
//! lattice). The two must denote the same program; the fuzz harness in
//! `tests/fuzz_scenarios.rs` holds every pairing to that.
//!
//! Generators draw only from [`rand::rngs::StdRng`] seeded with the given
//! seed — no ambient entropy — and never touch the thread RNG, so a
//! scenario is a pure function of `(family, seed)`.

use fundb_datalog::{Atom, Database, Rule, Term};
use fundb_term::{Cst, Interner, Pred, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;

/// A generated relational scenario: one program in two representations
/// plus a ground membership workload.
pub struct Scenario {
    /// Family name (`"skew"`, `"dense"`, `"cyclic"`, `"bounded"`).
    pub family: &'static str,
    /// The seed that produced it.
    pub seed: u64,
    /// Concrete syntax: rules then facts, parseable by
    /// `fundb_parser::Workspace`.
    pub text: String,
    /// Interner for the datalog representation below.
    pub interner: Interner,
    /// The same rules at the datalog level.
    pub rules: Vec<Rule>,
    /// The same facts at the datalog level.
    pub db: Database,
    /// Ground membership queries `(predicate name, argument constant
    /// names)` — a mix of likely-positive and likely-negative tuples. Names
    /// resolve in `interner` and in any workspace that parsed `text`.
    pub queries: Vec<(String, Vec<String>)>,
}

/// A generated temporal scenario: a forward temporal program in concrete
/// syntax plus a point/interval query workload.
pub struct TemporalScenario {
    /// The seed that produced it.
    pub seed: u64,
    /// Concrete syntax with `t`/`t+1` temporal arguments and numeral facts.
    pub text: String,
    /// Point queries `(predicate name, time, argument constant names)`.
    pub queries: Vec<(String, u64, Vec<String>)>,
    /// Interval queries `(predicate name, from, to, argument constant
    /// names)`: the harness checks every point of `from..=to`.
    pub intervals: Vec<(String, u64, u64, Vec<String>)>,
}

/// A seeded scenario family: pure function from seed to scenario.
pub type ScenarioFn = fn(u64) -> Scenario;

/// The relational families, by name, for data-driven harnesses.
pub const RELATIONAL_FAMILIES: &[(&str, ScenarioFn)] = &[
    ("skew", skew),
    ("dense", dense),
    ("cyclic", cyclic),
    ("bounded", bounded_depth),
    ("tc_chain", tc_chain),
    ("tc_right", tc_right),
    ("churn", churn),
];

/// One step of a churn script: retract a currently-present base fact, or
/// re-insert a previously retracted one. Rows are by name so any harness
/// (engine-level, rebuild oracle, durable store) can resolve them against
/// its own interner.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ChurnOp {
    /// Predicate name.
    pub pred: String,
    /// Argument constant names.
    pub row: Vec<String>,
    /// `true` = retract the fact, `false` = (re-)insert it.
    pub retract: bool,
}

/// Incrementally builds the two representations in lock-step so they
/// cannot drift apart.
struct Build {
    interner: Interner,
    text: String,
    rules: Vec<Rule>,
    db: Database,
    /// `(name, arity)` of every predicate that received a fact or a head,
    /// for query sampling.
    preds: Vec<(String, usize)>,
    /// Constant names used in facts, for query sampling.
    consts: Vec<String>,
}

/// A term spec: variable (lowercase) or constant (uppercase) by name.
#[derive(Clone)]
enum T {
    V(&'static str),
    C(String),
}

impl Build {
    fn new() -> Build {
        Build {
            interner: Interner::new(),
            text: String::new(),
            rules: Vec::new(),
            db: Database::new(),
            preds: Vec::new(),
            consts: Vec::new(),
        }
    }

    fn note_pred(&mut self, name: &str, arity: usize) {
        if !self.preds.iter().any(|(n, _)| n == name) {
            self.preds.push((name.to_string(), arity));
        }
    }

    fn term(&mut self, t: &T) -> Term {
        match t {
            T::V(v) => Term::Var(Var(self.interner.intern(v))),
            T::C(c) => Term::Const(Cst(self.interner.intern(c))),
        }
    }

    fn atom(&mut self, pred: &str, args: &[T]) -> Atom {
        let p = Pred(self.interner.intern(pred));
        let args = args.iter().map(|t| self.term(t)).collect();
        Atom::new(p, args)
    }

    fn render(pred: &str, args: &[T]) -> String {
        let parts: Vec<&str> = args
            .iter()
            .map(|t| match t {
                T::V(v) => *v,
                T::C(c) => c.as_str(),
            })
            .collect();
        format!("{pred}({})", parts.join(", "))
    }

    /// Adds a rule to both representations. `head`/`body` are
    /// `(pred, args)` pairs; the body is kept in the given (often
    /// deliberately adversarial) written order.
    fn rule(&mut self, head: (&str, &[T]), body: &[(&str, &[T])]) {
        self.note_pred(head.0, head.1.len());
        let rendered: Vec<String> = body.iter().map(|(p, a)| Build::render(p, a)).collect();
        writeln!(
            self.text,
            "{} -> {}.",
            rendered.join(", "),
            Build::render(head.0, head.1)
        )
        .unwrap();
        let h = self.atom(head.0, head.1);
        let b = body.iter().map(|(p, a)| self.atom(p, a)).collect();
        self.rules.push(Rule::new(h, b));
    }

    /// Adds a ground fact to both representations. Duplicate facts (the
    /// random generators do produce them) are dropped on both sides, so
    /// the text stays line-for-line aligned with the datalog database.
    fn fact(&mut self, pred: &str, args: &[&str]) {
        self.note_pred(pred, args.len());
        let p = Pred(self.interner.intern(pred));
        let row: Vec<Cst> = args.iter().map(|c| Cst(self.interner.intern(c))).collect();
        if !self.db.insert(p, &row) {
            return;
        }
        writeln!(self.text, "{pred}({}).", args.join(", ")).unwrap();
        for c in args {
            if !self.consts.iter().any(|k| k == c) {
                self.consts.push((*c).to_string());
            }
        }
    }

    /// Samples `k` ground membership queries over the predicates and
    /// constants seen so far.
    fn finish(mut self, family: &'static str, seed: u64, rng: &mut StdRng, k: usize) -> Scenario {
        let mut queries = Vec::with_capacity(k);
        if !self.preds.is_empty() && !self.consts.is_empty() {
            for _ in 0..k {
                let (name, arity) = self.preds[rng.gen_range(0..self.preds.len())].clone();
                let args: Vec<String> = (0..arity)
                    .map(|_| self.consts[rng.gen_range(0..self.consts.len())].clone())
                    .collect();
                // Intern query constants on the datalog side too, so both
                // representations can resolve every query by name.
                for a in &args {
                    self.interner.intern(a);
                }
                queries.push((name, args));
            }
        }
        Scenario {
            family,
            seed,
            text: self.text,
            interner: self.interner,
            rules: self.rules,
            db: self.db,
            queries,
        }
    }
}

/// Skewed fan-out: one hub with `m` spokes plus a short chain, a tiny tag
/// relation, and rule bodies written big-relation-first — the shape where
/// the boundness-greedy order degenerates to the written order and pays
/// `|E|` probes that the cost model avoids.
pub fn skew(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x736b_6577);
    let mut b = Build::new();
    let m = rng.gen_range(24..=48);
    let chain = rng.gen_range(4..=8usize);
    // Hub fan-out.
    for i in 0..m {
        b.fact("E", &["Hub", &format!("Sp{i}")]);
    }
    // Chain off the hub.
    let node = |j: usize| {
        if j == 0 {
            "Hub".to_string()
        } else {
            format!("K{j}")
        }
    };
    for j in 0..chain {
        b.fact("E", &[&node(j), &node(j + 1)]);
    }
    // Tiny tag relation on a few chain nodes.
    let tags = rng.gen_range(2..=4usize);
    for j in 0..tags {
        let at = rng.gen_range(1..=chain);
        b.fact("S", &[&node(at), &format!("Tag{j}")]);
    }
    // Adversarial written order: the big E first in every body.
    let (x, y, z, w) = (T::V("x"), T::V("y"), T::V("z"), T::V("w"));
    b.rule(
        ("T", &[x.clone(), z.clone()]),
        &[
            ("E", &[x.clone(), y.clone()]),
            ("S", &[y.clone(), z.clone()]),
        ],
    );
    b.rule(
        ("T", &[x.clone(), z.clone()]),
        &[
            ("E", &[x.clone(), y.clone()]),
            ("T", &[y.clone(), z.clone()]),
        ],
    );
    b.rule(
        ("U", &[x.clone(), w.clone()]),
        &[
            ("E", &[x.clone(), y.clone()]),
            ("E", &[y.clone(), z.clone()]),
            ("S", &[z.clone(), w.clone()]),
        ],
    );
    // A constant-bound atom: the hub's direct neighbourhood.
    b.rule(
        ("Hx", std::slice::from_ref(&y)),
        &[("E", &[T::C("Hub".to_string()), y.clone()])],
    );
    b.finish("skew", seed, &mut rng, 12)
}

/// Dense near-cross-products: two relations filled to a random density
/// over a small domain joined through a sparse filter written last — the
/// planner should hoist the filter; greedy enumerates the dense pairs.
pub fn dense(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6465_6e73);
    let mut b = Build::new();
    let n = rng.gen_range(4..=6usize);
    let dom: Vec<String> = (0..n).map(|i| format!("D{i}")).collect();
    for rel in ["A", "B"] {
        let density = rng.gen_range(40..=80); // percent
        let mut any = false;
        for i in 0..n {
            for j in 0..n {
                if rng.gen_range(0..100) < density {
                    b.fact(rel, &[&dom[i], &dom[j]]);
                    any = true;
                }
            }
        }
        if !any {
            b.fact(rel, &[&dom[0], &dom[n - 1]]);
        }
    }
    // Sparse filter.
    for _ in 0..rng.gen_range(2..=3usize) {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        b.fact("C", &[&dom[i], &dom[j]]);
    }
    let (x, y, z, w) = (T::V("x"), T::V("y"), T::V("z"), T::V("w"));
    // Dense pair first, filter last: worst written order.
    b.rule(
        ("R", &[x.clone(), z.clone()]),
        &[
            ("A", &[x.clone(), y.clone()]),
            ("B", &[y.clone(), z.clone()]),
            ("C", &[z.clone(), w.clone()]),
        ],
    );
    b.rule(
        ("R", &[x.clone(), z.clone()]),
        &[
            ("R", &[x.clone(), y.clone()]),
            ("A", &[y.clone(), z.clone()]),
        ],
    );
    b.finish("dense", seed, &mut rng, 12)
}

/// Cyclic / strongly-connected rule dependencies: `k` mutually recursive
/// predicates rotating over a random edge relation, so the dependency
/// graph is one SCC and semi-naive deltas chase each other around the
/// cycle for several rounds.
pub fn cyclic(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6379_636c);
    let mut b = Build::new();
    let k = rng.gen_range(2..=4usize);
    let n = rng.gen_range(6..=10usize);
    let edges = 2 * n;
    for _ in 0..edges {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..n);
        b.fact("E", &[&format!("N{i}"), &format!("N{j}")]);
    }
    // A tiny mark relation for one skew-shaped rule.
    for _ in 0..2 {
        let i = rng.gen_range(0..n);
        b.fact(
            "M",
            &[&format!("N{i}"), &format!("Mark{}", rng.gen_range(0..2))],
        );
    }
    let (x, y, z) = (T::V("x"), T::V("y"), T::V("z"));
    b.rule(
        ("P0", &[x.clone(), y.clone()]),
        &[("E", &[x.clone(), y.clone()])],
    );
    for i in 0..k {
        let head = format!("P{}", (i + 1) % k);
        let body_pred = format!("P{i}");
        b.rule(
            (head.as_str(), &[x.clone(), z.clone()]),
            &[
                (body_pred.as_str(), &[x.clone(), y.clone()]),
                ("E", &[y.clone(), z.clone()]),
            ],
        );
    }
    // Big-first body over the SCC output.
    b.rule(
        ("W", &[x.clone(), z.clone()]),
        &[
            ("P0", &[x.clone(), y.clone()]),
            ("M", &[y.clone(), z.clone()]),
        ],
    );
    b.finish("cyclic", seed, &mut rng, 12)
}

/// Bounded derivation depth: a non-recursive layered program (depth `d`)
/// over per-layer bipartite edge relations, in the spirit of
/// bounded/FC-bounded programs — every derivation is at most `d` rules
/// deep, so naive evaluation is exact after `d + 1` rounds.
pub fn bounded_depth(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6264_6570);
    let mut b = Build::new();
    let d = rng.gen_range(3..=5usize);
    let width = rng.gen_range(3..=5usize);
    let node = |layer: usize, i: usize| format!("Lv{layer}N{i}");
    // Per-layer bipartite edges, dense enough that facts flow to the top.
    for layer in 0..d {
        let e = format!("E{layer}");
        for i in 0..width {
            for j in 0..width {
                if rng.gen_range(0..100) < 55 {
                    b.fact(&e, &[&node(layer, i), &node(layer + 1, j)]);
                }
            }
        }
        // Guarantee at least one edge per layer so depth is realized.
        b.fact(&e, &[&node(layer, 0), &node(layer + 1, 0)]);
    }
    for i in 0..width {
        if i == 0 || rng.gen_range(0..100) < 50 {
            b.fact("L0", &[&node(0, i)]);
        }
    }
    let (x, y, z) = (T::V("x"), T::V("y"), T::V("z"));
    for layer in 0..d {
        let head = format!("L{}", layer + 1);
        let lower = format!("L{layer}");
        let e = format!("E{layer}");
        b.rule(
            (head.as_str(), std::slice::from_ref(&y)),
            &[
                (lower.as_str(), std::slice::from_ref(&x)),
                (e.as_str(), &[x.clone(), y.clone()]),
            ],
        );
    }
    // One two-hop rule with the dense relations first.
    b.rule(
        ("G", &[x.clone(), z.clone()]),
        &[
            ("E0", &[x.clone(), y.clone()]),
            ("E1", &[y.clone(), z.clone()]),
            ("L0", std::slice::from_ref(&x)),
        ],
    );
    b.finish("bounded", seed, &mut rng, 12)
}

/// Shared builder for the deep transitive-closure families: a single chain
/// `N0 → N1 → … → Ndepth` with a few off-chain distractor edges, closed
/// under either the left-linear (`Path, Edge`) or right-recursive
/// (`Edge, Path`) rule shape. Ground point queries like
/// `Path(N0, Ndepth)` have an O(depth) demand cone while the full
/// fixpoint is O(depth²) — the E15 contrast workload.
fn tc_sized(
    family: &'static str,
    seed: u64,
    rng: &mut StdRng,
    depth: usize,
    left_linear: bool,
) -> Scenario {
    let mut b = Build::new();
    let node = |i: usize| format!("N{i}");
    for i in 0..depth {
        b.fact("Edge", &[&node(i), &node(i + 1)]);
    }
    // Off-chain distractors: dead-end spurs the closure must still cover.
    for e in 0..rng.gen_range(2..=5usize) {
        let at = rng.gen_range(0..depth);
        b.fact("Edge", &[&node(at), &format!("Off{e}")]);
    }
    let (x, y, z) = (T::V("x"), T::V("y"), T::V("z"));
    b.rule(
        ("Path", &[x.clone(), y.clone()]),
        &[("Edge", &[x.clone(), y.clone()])],
    );
    if left_linear {
        b.rule(
            ("Path", &[x.clone(), z.clone()]),
            &[
                ("Path", &[x.clone(), y.clone()]),
                ("Edge", &[y.clone(), z.clone()]),
            ],
        );
    } else {
        b.rule(
            ("Path", &[x.clone(), z.clone()]),
            &[
                ("Edge", &[x.clone(), y.clone()]),
                ("Path", &[y.clone(), z.clone()]),
            ],
        );
    }
    b.finish(family, seed, rng, 12)
}

/// Left-linear transitive closure over a deep chain
/// (`Path(x,z) :- Path(x,y), Edge(y,z)`), fuzz-sized depth.
pub fn tc_chain(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7463_6368);
    let depth = rng.gen_range(12..=28);
    tc_sized("tc_chain", seed, &mut rng, depth, true)
}

/// [`tc_chain`] at an explicit depth, for the E15 goal-directed
/// experiment (depth 512 point queries).
pub fn tc_chain_n(seed: u64, depth: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7463_6368);
    tc_sized("tc_chain", seed, &mut rng, depth, true)
}

/// Right-recursive transitive closure over a deep chain
/// (`Path(x,z) :- Edge(x,y), Path(y,z)`), fuzz-sized depth.
pub fn tc_right(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7463_7274);
    let depth = rng.gen_range(12..=28);
    tc_sized("tc_right", seed, &mut rng, depth, false)
}

/// [`tc_right`] at an explicit depth, for the E15 goal-directed
/// experiment (depth 512 point queries).
pub fn tc_right_n(seed: u64, depth: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7463_7274);
    tc_sized("tc_right", seed, &mut rng, depth, false)
}

/// [`bounded_depth`] stretched to an explicit layer count with edge-first
/// rule bodies (`E_l(x,y), L_l(x)`), so a ground top-layer goal's demand
/// cone chases one backward path instead of materializing every layer.
/// Width stays small; the full fixpoint is O(depth · width²).
pub fn bounded_depth_n(seed: u64, depth: usize) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6264_6570);
    let mut b = Build::new();
    let width = 3usize;
    let node = |layer: usize, i: usize| format!("Lv{layer}N{i}");
    for layer in 0..depth {
        let e = format!("E{layer}");
        for i in 0..width {
            for j in 0..width {
                if rng.gen_range(0..100) < 55 {
                    b.fact(&e, &[&node(layer, i), &node(layer + 1, j)]);
                }
            }
        }
        b.fact(&e, &[&node(layer, 0), &node(layer + 1, 0)]);
    }
    for i in 0..width {
        if i == 0 || rng.gen_range(0..100) < 50 {
            b.fact("L0", &[&node(0, i)]);
        }
    }
    let (x, y) = (T::V("x"), T::V("y"));
    for layer in 0..depth {
        let head = format!("L{}", layer + 1);
        let lower = format!("L{layer}");
        let e = format!("E{layer}");
        b.rule(
            (head.as_str(), std::slice::from_ref(&y)),
            &[
                (e.as_str(), &[x.clone(), y.clone()]),
                (lower.as_str(), std::slice::from_ref(&x)),
            ],
        );
    }
    b.finish("bounded", seed, &mut rng, 12)
}

/// Churn: a transitive-closure graph over a chain *plus* random shortcut
/// edges, so many `Path` rows have alternative derivations — retracting
/// one edge forces the over-delete/re-derive split (DRed) to actually
/// restore rows rather than just cascade. Pair with [`churn_script`] for
/// the retract/re-insert workload; as a plain scenario it also rides the
/// existing evaluator/serving lattices.
pub fn churn(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6368_726e);
    let mut b = Build::new();
    let n = rng.gen_range(8..=14usize);
    let node = |i: usize| format!("N{i}");
    for i in 0..n {
        b.fact("Edge", &[&node(i), &node(i + 1)]);
    }
    // Shortcuts create alternative derivations for mid-chain paths.
    for _ in 0..rng.gen_range(3..=6usize) {
        let i = rng.gen_range(0..n);
        let j = rng.gen_range(0..=n);
        b.fact("Edge", &[&node(i), &node(j)]);
    }
    let (x, y, z) = (T::V("x"), T::V("y"), T::V("z"));
    b.rule(
        ("Path", &[x.clone(), y.clone()]),
        &[("Edge", &[x.clone(), y.clone()])],
    );
    b.rule(
        ("Path", &[x.clone(), z.clone()]),
        &[
            ("Path", &[x.clone(), y.clone()]),
            ("Edge", &[y.clone(), z.clone()]),
        ],
    );
    b.finish("churn", seed, &mut rng, 12)
}

/// Derives a seeded churn script over any relational scenario's base
/// facts: roughly `2 × percent%` of the facts' worth of steps, mixing
/// retractions of currently-present facts with re-insertions of
/// previously retracted ones. The fact universe is enumerated in sorted
/// name order (never hash-map order), so the script is a pure function of
/// `(scenario, seed, percent)` — the contract every churn harness
/// (agreement lattice, E18, crash matrix) leans on.
pub fn churn_script(scenario: &Scenario, seed: u64, percent: usize) -> Vec<ChurnOp> {
    let mut facts: Vec<(String, Vec<String>)> = scenario
        .db
        .iter()
        .flat_map(|(p, rel)| {
            let name = scenario.interner.resolve(p.sym()).to_string();
            rel.rows().map(move |row| {
                (
                    name.clone(),
                    row.iter()
                        .map(|c| scenario.interner.resolve(c.sym()).to_string())
                        .collect(),
                )
            })
        })
        .collect();
    facts.sort();
    if facts.is_empty() {
        return Vec::new();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x6368_7363);
    let steps = (facts.len() * percent).div_ceil(100).max(1) * 2;
    let mut present: Vec<usize> = (0..facts.len()).collect();
    let mut absent: Vec<usize> = Vec::new();
    let mut ops = Vec::with_capacity(steps);
    for _ in 0..steps {
        let reinsert = !absent.is_empty() && (present.is_empty() || rng.gen_range(0..2) == 1);
        let (pool, retract): (&mut Vec<usize>, bool) = if reinsert {
            (&mut absent, false)
        } else {
            (&mut present, true)
        };
        if pool.is_empty() {
            break;
        }
        let at = rng.gen_range(0..pool.len());
        let idx = pool.swap_remove(at);
        let (pred, row) = facts[idx].clone();
        ops.push(ChurnOp { pred, row, retract });
        if retract {
            absent.push(idx);
        } else {
            present.push(idx);
        }
    }
    ops
}

/// Temporal lasso scenarios: a small forward temporal program (bodies at
/// `t`, heads at `t` or `t+1`, numeral facts near 0) whose specification
/// is an eventually-periodic lasso; queries probe single points and whole
/// intervals, including far beyond the prefix.
pub fn temporal(seed: u64) -> TemporalScenario {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7465_6d70);
    let k = rng.gen_range(2..=3usize);
    let nconsts = rng.gen_range(1..=2usize);
    let pred = |i: usize| format!("P{i}");
    let cst = |i: usize| format!("K{i}");
    let mut text = String::new();
    // Always include a driving rule so something propagates forward.
    writeln!(text, "P0(t, x) -> P1(t+1, x).").unwrap();
    for _ in 0..rng.gen_range(2..=4usize) {
        let body_len = rng.gen_range(1..=2usize);
        let mut body: Vec<String> = Vec::new();
        for _ in 0..body_len {
            body.push(format!("{}(t, x)", pred(rng.gen_range(0..k))));
        }
        let head_off = rng.gen_range(0..=1usize);
        let head = pred(rng.gen_range(0..k));
        let head = if head_off == 0 {
            format!("{head}(t, x)")
        } else {
            format!("{head}(t+1, x)")
        };
        writeln!(text, "{} -> {}.", body.join(", "), head).unwrap();
    }
    // Facts at small positions; at least one at 0.
    let nfacts = rng.gen_range(1..=3usize);
    for f in 0..nfacts {
        let at = if f == 0 { 0 } else { rng.gen_range(0..=2usize) };
        writeln!(
            text,
            "{}({at}, {}).",
            pred(rng.gen_range(0..k)),
            cst(rng.gen_range(0..nconsts))
        )
        .unwrap();
    }
    let mut queries = Vec::new();
    for _ in 0..16 {
        queries.push((
            pred(rng.gen_range(0..k)),
            rng.gen_range(0..40u64),
            vec![cst(rng.gen_range(0..nconsts))],
        ));
    }
    let mut intervals = Vec::new();
    for _ in 0..3 {
        let from = rng.gen_range(0..24u64);
        let to = from + rng.gen_range(1..=12u64);
        intervals.push((
            pred(rng.gen_range(0..k)),
            from,
            to,
            vec![cst(rng.gen_range(0..nconsts))],
        ));
    }
    TemporalScenario {
        seed,
        text,
        queries,
        intervals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_are_reproducible_from_their_seed() {
        for &(name, f) in RELATIONAL_FAMILIES {
            let a = f(42);
            let b = f(42);
            let c = f(43);
            assert_eq!(a.text, b.text, "{name} not deterministic");
            assert_eq!(a.queries, b.queries, "{name} queries not deterministic");
            assert_ne!(a.text, c.text, "{name} ignores its seed");
        }
        let t1 = temporal(7);
        let t2 = temporal(7);
        assert_eq!(t1.text, t2.text);
        assert_eq!(t1.queries, t2.queries);
    }

    #[test]
    fn churn_scripts_are_deterministic_and_well_formed() {
        let s = churn(17);
        let a = churn_script(&s, 5, 50);
        let b = churn_script(&s, 5, 50);
        assert_eq!(a, b, "script not deterministic");
        assert!(!a.is_empty());
        // Every step is legal against the running present-set: retracts
        // hit present facts, inserts re-add absent ones.
        let interner = &s.interner;
        let mut present: Vec<(String, Vec<String>)> =
            s.db.iter()
                .flat_map(|(p, rel)| {
                    let name = interner.resolve(p.sym()).to_string();
                    rel.rows().map(move |row| {
                        (
                            name.clone(),
                            row.iter()
                                .map(|c| interner.resolve(c.sym()).to_string())
                                .collect::<Vec<String>>(),
                        )
                    })
                })
                .collect();
        for op in &a {
            let key = (op.pred.clone(), op.row.clone());
            if op.retract {
                let at = present.iter().position(|k| *k == key).expect("present");
                present.swap_remove(at);
            } else {
                assert!(!present.contains(&key), "insert of a present fact");
                present.push(key);
            }
        }
        // A 1% mix still produces at least one retraction.
        assert!(churn_script(&s, 5, 1).iter().any(|o| o.retract));
    }

    #[test]
    fn relational_representations_agree_textually() {
        // Every rule and fact the datalog side holds must appear in the
        // text: same number of statements, and the dl fact count matches
        // the number of fact lines.
        for &(_, f) in RELATIONAL_FAMILIES {
            let s = f(9);
            let lines = s.text.lines().count();
            let fact_lines = s.text.lines().filter(|l| !l.contains("->")).count();
            assert_eq!(lines, s.rules.len() + fact_lines);
            assert_eq!(s.db.fact_count(), fact_lines, "dedup'd facts mismatch");
        }
    }
}
