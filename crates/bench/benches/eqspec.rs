//! E6 — equational specifications (Theorem 4.3): extraction of (B, R) from
//! the graph specification and Cl(R) membership tests via congruence
//! closure, including deep query terms.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fundb_bench::{rotation, subset_lists};
use fundb_core::EqSpec;

fn bench_eqspec(c: &mut Criterion) {
    let mut group = c.benchmark_group("eqspec");
    group.sample_size(10);

    for k in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("extract/rotation", k), &k, |b, &k| {
            let spec = rotation(k).graph_spec().unwrap();
            b.iter(|| EqSpec::from_graph(&spec));
        });
    }
    for n in [3usize, 5] {
        group.bench_with_input(BenchmarkId::new("extract/subset_lists", n), &n, |b, &n| {
            let spec = subset_lists(n).graph_spec().unwrap();
            b.iter(|| EqSpec::from_graph(&spec));
        });
    }

    // Membership via congruence closure at increasing term depth.
    for depth in [64usize, 1024] {
        group.bench_with_input(
            BenchmarkId::new("membership/rotation8", depth),
            &depth,
            |b, &depth| {
                let mut ws = rotation(8);
                let spec = ws.graph_spec().unwrap();
                let meets = fundb_term::Pred(ws.interner.get("Meets").unwrap());
                let plus1 = fundb_term::Func(ws.interner.get("+1").unwrap());
                let s0 = fundb_term::Cst(ws.interner.get("S0").unwrap());
                let path = vec![plus1; depth];
                b.iter(|| {
                    let mut eq = EqSpec::from_graph(&spec);
                    eq.holds(meets, &path, &[s0])
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_eqspec);
criterion_main!(benches);
