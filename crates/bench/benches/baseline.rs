//! E9 — the [RBS87] baseline: bounded-depth naive materialization (cost
//! grows with the horizon) vs the relational specification (one-off build,
//! O(path) membership afterwards).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fundb_bench::rotation;
use fundb_core::{normalize, to_pure, BoundedMaterialization};

fn bench_baseline(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline");
    group.sample_size(10);

    for depth in [16usize, 64, 256] {
        group.bench_with_input(
            BenchmarkId::new("naive_materialize", depth),
            &depth,
            |b, &depth| {
                let mut ws = rotation(6);
                let normal = normalize(&ws.program, &mut ws.interner);
                let pure = to_pure(&normal, &ws.db, &mut ws.interner).unwrap();
                b.iter(|| BoundedMaterialization::run(&pure, depth, &mut ws.interner));
            },
        );
    }
    group.bench_function("spec_build", |b| {
        b.iter(|| rotation(6).graph_spec().unwrap());
    });
    group.bench_function("spec_membership_depth_10000", |b| {
        let mut ws = rotation(6);
        let spec = ws.graph_spec().unwrap();
        let meets = fundb_term::Pred(ws.interner.get("Meets").unwrap());
        let plus1 = fundb_term::Func(ws.interner.get("+1").unwrap());
        let s0 = fundb_term::Cst(ws.interner.get("S0").unwrap());
        let path = vec![plus1; 10_000];
        b.iter(|| spec.holds(meets, &path, &[s0]));
    });
    group.finish();
}

criterion_group!(benches, bench_baseline);
criterion_main!(benches);
