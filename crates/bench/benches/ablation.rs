//! Ablations for the implementation's design choices:
//!
//! * semi-naive vs naive bottom-up evaluation in the Datalog substrate,
//! * the unary congruence closure vs the general k-ary procedure on the
//!   unary workloads the equational specifications produce,
//! * raw Algorithm Q output vs its bisimulation quotient (spec size is
//!   traded against one extra minimization pass).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fundb_bench::subset_lists;
use fundb_congruence::{CongruenceClosure, GenCongruence};
use fundb_datalog as dl;
use fundb_term::{Cst, Func, Interner, Pred, Var};

fn transitive_closure(n: usize) -> (dl::Database, Vec<dl::Rule>) {
    let mut i = Interner::new();
    let edge = Pred(i.intern("Edge"));
    let path = Pred(i.intern("Path"));
    let (x, y, z) = (Var(i.intern("x")), Var(i.intern("y")), Var(i.intern("z")));
    let rules = vec![
        dl::Rule::new(
            dl::Atom::new(path, vec![dl::Term::Var(x), dl::Term::Var(y)]),
            vec![dl::Atom::new(
                edge,
                vec![dl::Term::Var(x), dl::Term::Var(y)],
            )],
        ),
        dl::Rule::new(
            dl::Atom::new(path, vec![dl::Term::Var(x), dl::Term::Var(z)]),
            vec![
                dl::Atom::new(path, vec![dl::Term::Var(x), dl::Term::Var(y)]),
                dl::Atom::new(edge, vec![dl::Term::Var(y), dl::Term::Var(z)]),
            ],
        ),
    ];
    let mut db = dl::Database::new();
    let nodes: Vec<Cst> = (0..=n).map(|k| Cst(i.intern(&format!("v{k}")))).collect();
    for w in nodes.windows(2) {
        db.insert(edge, &[w[0], w[1]]);
    }
    (db, rules)
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);

    // Semi-naive vs naive evaluation.
    for n in [32usize, 64] {
        group.bench_with_input(BenchmarkId::new("datalog/semi_naive", n), &n, |b, &n| {
            b.iter(|| {
                let (mut db, rules) = transitive_closure(n);
                dl::evaluate(&mut db, &rules)
            });
        });
        group.bench_with_input(BenchmarkId::new("datalog/naive", n), &n, |b, &n| {
            b.iter(|| {
                let (mut db, rules) = transitive_closure(n);
                dl::evaluate_naive(&mut db, &rules)
            });
        });
    }

    // Unary vs generic congruence closure on an equational-spec-like
    // workload: a long chain collapsed modulo k.
    for len in [256usize, 1024] {
        group.bench_with_input(
            BenchmarkId::new("congruence/unary", len),
            &len,
            |b, &len| {
                let mut i = Interner::new();
                let f = Func(i.intern("f"));
                b.iter(|| {
                    let mut cc = CongruenceClosure::new();
                    cc.equate_paths(&[], &[f; 7]);
                    cc.congruent_paths(&vec![f; len], &vec![f; len % 7])
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("congruence/generic", len),
            &len,
            |b, &len| {
                let mut i = Interner::new();
                let f = i.intern("f");
                let zero = i.intern("0");
                b.iter(|| {
                    let mut cc = GenCongruence::new();
                    let chain = |cc: &mut GenCongruence, n: usize| {
                        let mut t = cc.term(zero, &[]);
                        for _ in 0..n {
                            t = cc.term(f, &[t]);
                        }
                        t
                    };
                    let a = chain(&mut cc, 7);
                    let z = chain(&mut cc, 0);
                    cc.merge(a, z);
                    let (long, short) = (chain(&mut cc, len), chain(&mut cc, len % 7));
                    cc.congruent(long, short)
                });
            },
        );
    }

    // Raw Algorithm Q output vs the bisimulation quotient.
    group.bench_function("minimize/subset_lists/5", |b| {
        let spec = subset_lists(5).graph_spec().unwrap();
        b.iter(|| spec.minimized());
    });
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
