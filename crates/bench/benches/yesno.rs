//! E4 — yes-no query processing cost (Theorem 4.1): the temporal line
//! evaluator vs the general engine on the same temporal inputs, across the
//! benign (rotation) and adversarial (binary counter) families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fundb_bench::{binary_counter, rotation};
use fundb_core::Engine;
use fundb_temporal::TemporalSpec;

fn bench_yesno(c: &mut Criterion) {
    let mut group = c.benchmark_group("yesno");
    group.sample_size(10);

    for k in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("rotation/temporal", k), &k, |b, &k| {
            b.iter(|| {
                let mut ws = rotation(k);
                TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("rotation/general", k), &k, |b, &k| {
            b.iter(|| {
                let mut ws = rotation(k);
                let mut engine = Engine::build(&ws.program, &ws.db, &mut ws.interner).unwrap();
                engine.solve().unwrap();
                engine
            });
        });
    }
    for w in [4usize, 6] {
        group.bench_with_input(BenchmarkId::new("counter/temporal", w), &w, |b, &w| {
            b.iter(|| {
                let mut ws = binary_counter(w);
                TemporalSpec::compute(&ws.program, &ws.db, &mut ws.interner).unwrap()
            });
        });
        group.bench_with_input(BenchmarkId::new("counter/general", w), &w, |b, &w| {
            b.iter(|| {
                let mut ws = binary_counter(w);
                let mut engine = Engine::build(&ws.program, &ws.db, &mut ws.interner).unwrap();
                engine.solve().unwrap();
                engine
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_yesno);
criterion_main!(benches);
