//! E5 — graph specification construction (Theorem 4.2): Algorithm Q on the
//! linear (rotation, ring planner) and exponential (subset lists) families.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fundb_bench::{ring_planner, rotation, subset_lists};

fn bench_graphspec(c: &mut Criterion) {
    let mut group = c.benchmark_group("graphspec");
    group.sample_size(10);

    for k in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("rotation", k), &k, |b, &k| {
            b.iter(|| rotation(k).graph_spec().unwrap());
        });
    }
    for n in [3usize, 5] {
        group.bench_with_input(BenchmarkId::new("subset_lists", n), &n, |b, &n| {
            b.iter(|| subset_lists(n).graph_spec().unwrap());
        });
    }
    for n in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("ring_planner", n), &n, |b, &n| {
            b.iter(|| ring_planner(n).graph_spec().unwrap());
        });
    }
    // Minimization on top of construction.
    group.bench_function("subset_lists/4/minimized", |b| {
        let spec = subset_lists(4).graph_spec().unwrap();
        b.iter(|| spec.minimized());
    });
    group.finish();
}

criterion_group!(benches, bench_graphspec);
criterion_main!(benches);
