//! E8 — query answering (Theorem 5.1): incremental specifications vs full
//! recomputation by extension, for the canonical uniform query
//! {(s, x̄) : P(s, x̄)}.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fundb_bench::{rotation, subset_lists};
use fundb_core::program::{Atom, FTerm, NTerm};
use fundb_core::Query;
use fundb_parser::Workspace;

fn meets_query(ws: &mut Workspace) -> Query {
    let meets = fundb_term::Pred(ws.interner.get("Meets").unwrap());
    let s = fundb_term::Var(ws.interner.intern("q_s"));
    let x = fundb_term::Var(ws.interner.intern("q_x"));
    Query {
        out_fvar: Some(s),
        out_nvars: vec![x],
        body: vec![Atom::Functional {
            pred: meets,
            fterm: FTerm::Var(s),
            args: vec![NTerm::Var(x)],
        }],
    }
}

fn member_query(ws: &mut Workspace) -> Query {
    let member = fundb_term::Pred(ws.interner.get("Member").unwrap());
    let s = fundb_term::Var(ws.interner.intern("q_s"));
    let e0 = fundb_term::Cst(ws.interner.get("E0").unwrap());
    Query {
        out_fvar: Some(s),
        out_nvars: vec![],
        body: vec![Atom::Functional {
            pred: member,
            fterm: FTerm::Var(s),
            args: vec![NTerm::Const(e0)],
        }],
    }
}

fn bench_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("query");
    group.sample_size(10);

    for k in [8usize, 32] {
        group.bench_with_input(BenchmarkId::new("incremental/rotation", k), &k, |b, &k| {
            let mut ws = rotation(k);
            let spec = ws.graph_spec().unwrap();
            let q = meets_query(&mut ws);
            b.iter(|| q.answer_incremental(&spec, &ws.interner).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("extension/rotation", k), &k, |b, &k| {
            let mut ws = rotation(k);
            let q = meets_query(&mut ws);
            let program = ws.program.clone();
            let db = ws.db.clone();
            b.iter(|| {
                q.answer_by_extension(&program, &db, &mut ws.interner)
                    .unwrap()
            });
        });
    }
    group.bench_function("incremental/subset_lists/4", |b| {
        let mut ws = subset_lists(4);
        let spec = ws.graph_spec().unwrap();
        let q = member_query(&mut ws);
        b.iter(|| q.answer_incremental(&spec, &ws.interner).unwrap());
    });
    group.bench_function("enumerate/subset_lists/4", |b| {
        let mut ws = subset_lists(4);
        let spec = ws.graph_spec().unwrap();
        let q = member_query(&mut ws);
        let ans = q.answer_incremental(&spec, &ws.interner).unwrap();
        b.iter(|| ans.enumerate_terms(&spec, 32));
    });
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
