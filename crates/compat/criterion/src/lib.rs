//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the small benchmarking surface the workspace's `benches/` use:
//! `criterion_group!`/`criterion_main!`, benchmark groups,
//! `bench_function`/`bench_with_input`, `Bencher::iter`, and `BenchmarkId`.
//! Timing is a plain median-of-samples wall clock — adequate for the
//! relative comparisons the benches exist to demonstrate, with none of
//! upstream's statistics machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 20,
        }
    }
}

/// A named benchmark identifier (`function_name/parameter`).
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("function", parameter)`.
    pub fn new(function: &str, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// A group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&id.to_string());
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&id.to_string());
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine`, `sample_size` times.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up run outside the measurement.
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&mut self, label: &str) {
        if self.samples.is_empty() {
            println!("  {label:<40} (no samples)");
            return;
        }
        self.samples.sort_unstable();
        let median = self.samples[self.samples.len() / 2];
        let lo = self.samples[0];
        let hi = self.samples[self.samples.len() - 1];
        println!(
            "  {label:<40} median {:>12.3?}  [{:.3?} … {:.3?}]  ({} samples)",
            median,
            lo,
            hi,
            self.samples.len()
        );
    }
}

/// Declares a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` for a benchmark binary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
