//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the *subset* of the `rand 0.8` API its tests and benches actually use:
//! `StdRng`, `SeedableRng::seed_from_u64`, `Rng::gen_range` over integer
//! ranges, and `Rng::gen_bool`. The generator is a SplitMix64-seeded
//! xoshiro256** — not the upstream ChaCha12, so streams differ from real
//! `rand`, but every use in this workspace only needs a deterministic,
//! well-mixed sequence per seed.

/// Random number generator front-end methods (the used subset).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self.next_u64())
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 uniform mantissa bits, exactly like rand's f64 sampling.
        let f = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        f < p
    }
}

/// Seedable construction (the used subset).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Integer types [`SampleRange`] can produce (maps through `u128` so one
/// blanket impl covers every width, keeping literal-type inference identical
/// to upstream's single `SampleRange` impl per range shape).
pub trait UniformInt: Copy + PartialOrd {
    /// Widens (sign bits folded in for signed types).
    fn to_u128(self) -> u128;
    /// Narrows (inverse of [`UniformInt::to_u128`]).
    fn from_u128(v: u128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u128(self) -> u128 {
                self as u128
            }
            fn from_u128(v: u128) -> $t {
                v as $t
            }
        }
    )*};
}

impl_uniform_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

/// Integer ranges a generator can sample from.
pub trait SampleRange<T> {
    /// Maps 64 random bits onto the range.
    fn sample(self, bits: u64) -> T;
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, bits: u64) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        let span = self.end.to_u128().wrapping_sub(self.start.to_u128());
        T::from_u128(self.start.to_u128().wrapping_add(bits as u128 % span))
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample(self, bits: u64) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let span = hi.to_u128().wrapping_sub(lo.to_u128()).wrapping_add(1);
        T::from_u128(lo.to_u128().wrapping_add(bits as u128 % span))
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: usize = r.gen_range(0..5usize);
            assert!(x < 5);
            let y: usize = r.gen_range(0..=1usize);
            assert!(y <= 1);
            let z: u8 = r.gen_range(3u8..7);
            assert!((3..7).contains(&z));
        }
    }

    #[test]
    fn gen_bool_is_calibrated() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.4)).count();
        assert!((3_500..4_500).contains(&hits), "hits={hits}");
    }
}
