//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    elem: S,
    sizes: Range<usize>,
}

/// A `Vec` whose length is drawn from `sizes` and whose elements are drawn
/// from `elem`.
pub fn vec<S: Strategy>(elem: S, sizes: Range<usize>) -> VecStrategy<S> {
    assert!(sizes.start < sizes.end, "empty size range");
    VecStrategy { elem, sizes }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.sizes.end - self.sizes.start;
        let len = self.sizes.start + (rng.next_u64() as usize % span);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}
