//! Value-generation strategies (the used subset of upstream's `Strategy`).

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Generates values of `Self::Value` from a [`TestRng`].
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "generate anything" strategy (`any::<T>()`).
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

/// The canonical strategy for `T` (upstream's `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Tuples of strategies are strategies over tuples (upstream's tuple
// composition), generated left to right.
impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> (A::Value, B::Value) {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> (A::Value, B::Value, C::Value) {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

// References to strategies are strategies (lets `proptest!` take `&strat`).
impl<S: Strategy> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}
