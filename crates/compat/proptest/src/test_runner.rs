//! The case runner: configuration, RNG, regression replay, reporting.

use std::path::{Path, PathBuf};

/// Per-suite configuration (`#![proptest_config(..)]`). Only the fields this
/// workspace sets are meaningful; the rest exist so struct-update syntax
/// against `default()` keeps working if tests add them later.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of novel cases to run (before `PROPTEST_CASES` override).
    pub cases: u32,
    /// Maximum rejected (`prop_assume!`) draws before the suite errors.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// Assertion failure: the property is false for this input.
    Fail(String),
    /// `prop_assume!` rejection: the input is outside the property's domain.
    Reject(String),
}

impl TestCaseError {
    /// Constructs a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }
}

/// Deterministic generator handed to strategies.
///
/// `forced` values are yielded verbatim by the first `next_u64` calls — the
/// mechanism behind regression-seed replay (`seed = N` annotations).
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
    forced: Vec<u64>,
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// A generator whose stream is a pure function of `seed`.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut sm = seed;
        TestRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
            forced: Vec::new(),
        }
    }

    /// A generator that yields `value` on the first draw, then continues
    /// pseudo-randomly (seeded from the value).
    pub fn forced(value: u64) -> TestRng {
        let mut rng = TestRng::from_seed(value ^ 0xA076_1D64_78BD_642F);
        rng.forced.push(value);
        rng
    }

    /// The next 64 bits (forced values first, then xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        if let Some(v) = self.forced.pop() {
            return v;
        }
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// FNV-1a, used to give every test its own deterministic base stream.
fn fnv1a(text: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in text.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

/// Locates `<file stem>.proptest-regressions` next to the test source.
/// `file` is `file!()` from the macro expansion, whose base directory
/// depends on how cargo invoked rustc — try the obvious candidates.
fn regression_file(file: &str) -> Option<PathBuf> {
    let source = Path::new(file);
    let mut candidates = Vec::new();
    candidates.push(source.with_extension("proptest-regressions"));
    if source.is_relative() {
        if let Ok(manifest) = std::env::var("CARGO_MANIFEST_DIR") {
            let m = Path::new(&manifest);
            candidates.push(m.join(source).with_extension("proptest-regressions"));
            // Test targets declared as `../../tests/foo.rs` compile with a
            // workspace-root-relative path; walk up from the manifest too.
            for ancestor in m.ancestors().skip(1).take(3) {
                candidates.push(ancestor.join(source).with_extension("proptest-regressions"));
            }
        }
    }
    candidates.into_iter().find(|c| c.is_file())
}

/// Extracts replay values from a regressions file: every `seed = N`
/// annotation (upstream writes these as `# shrinks to seed = N`).
fn parse_regression_seeds(text: &str) -> Vec<u64> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') && !line.contains("seed") {
            continue;
        }
        if let Some(pos) = line.find("seed =") {
            let tail = line[pos + "seed =".len()..].trim();
            let digits: String = tail.chars().take_while(|c| c.is_ascii_digit()).collect();
            if let Ok(v) = digits.parse::<u64>() {
                out.push(v);
            }
        }
    }
    out
}

/// Runs one property: replays regression seeds, then novel cases.
///
/// Environment:
/// * `PROPTEST_CASES` overrides the configured case count.
/// * `PROPTEST_SEED` perturbs the deterministic base stream.
pub fn run_property(
    file: &str,
    name: &str,
    cfg: ProptestConfig,
    mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // 1. Regression replay: checked-in seeds always re-run first.
    if let Some(path) = regression_file(file) {
        let text = std::fs::read_to_string(&path).unwrap_or_default();
        for seed in parse_regression_seeds(&text) {
            let mut rng = TestRng::forced(seed);
            match case(&mut rng) {
                Ok(()) | Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "[{name}] regression case from {} failed (seed = {seed}):\n{msg}",
                    path.display()
                ),
            }
        }
    }

    // 2. Novel cases.
    let cases = std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(cfg.cases);
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map(|s| s ^ fnv1a(name))
        .unwrap_or_else(|| fnv1a(name));

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while passed < cases {
        let case_seed =
            base.wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15)) ^ index.rotate_left(32);
        index += 1;
        let mut rng = TestRng::from_seed(case_seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(why)) => {
                rejected += 1;
                if rejected > cfg.max_global_rejects {
                    panic!(
                        "[{name}] too many prop_assume! rejections \
                         ({rejected}); last: {why}"
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => panic!(
                "[{name}] case {passed} failed (case seed = {case_seed}; \
                 set PROPTEST_SEED to vary the stream):\n{msg}"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forced_rng_yields_value_first() {
        let mut rng = TestRng::forced(12345);
        assert_eq!(rng.next_u64(), 12345);
        // Stream continues deterministically afterwards.
        let a = rng.next_u64();
        let mut rng2 = TestRng::forced(12345);
        rng2.next_u64();
        assert_eq!(a, rng2.next_u64());
    }

    #[test]
    fn parses_upstream_regression_format() {
        let text = "# comment\n\
                    cc c643b43703df4c60 # shrinks to seed = 11365369558672328680\n\
                    cc deadbeef # shrinks to seed = 11579703684924507865\n";
        assert_eq!(
            parse_regression_seeds(text),
            vec![11365369558672328680, 11579703684924507865]
        );
    }

    #[test]
    fn deterministic_without_env() {
        let mut a = TestRng::from_seed(fnv1a("x"));
        let mut b = TestRng::from_seed(fnv1a("x"));
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
