//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate reimplements
//! the subset of proptest this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(..)]` header, integer-range and
//! `any::<T>()` strategies, `proptest::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` macros.
//!
//! Differences from upstream, chosen deliberately:
//!
//! * **Deterministic by default.** Case generation is a pure function of the
//!   test name and the case index, so CI failures replay locally without a
//!   persistence handshake. Set `PROPTEST_SEED` to explore a different
//!   stream, and `PROPTEST_CASES` to override every suite's case count.
//! * **Seed replay, not byte replay.** `*.proptest-regressions` files are
//!   still honored: every `shrinks to seed = N` / `seed = N` annotation is
//!   replayed *by value* before novel cases run — the first `any::<u64>()`
//!   draw of the test yields exactly `N`. (Upstream stores opaque byte
//!   seeds; the value annotation is the portable part.)
//! * **No shrinking.** On failure the panic message carries the full input
//!   assignment, which for the seed-driven generators used here is already
//!   minimal.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The glob-import surface mirrored from upstream.
pub mod prelude {
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Declares property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]
///     #[test]
///     fn my_property(seed in any::<u64>()) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]: one zero-argument `#[test]` wrapper
/// per declared property.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:pat in $strat:expr),+ $(,)? ) $body:block
      )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg = $cfg;
                $crate::test_runner::run_property(
                    file!(),
                    stringify!($name),
                    __cfg,
                    |__rng: &mut $crate::test_runner::TestRng| {
                        let mut __inputs = ::std::string::String::new();
                        $(
                            let __value =
                                $crate::strategy::Strategy::generate(&($strat), __rng);
                            if !__inputs.is_empty() { __inputs.push_str(", "); }
                            __inputs.push_str(&::std::format!(
                                "{} = {:?}", stringify!($arg), __value
                            ));
                            let $arg = __value;
                        )+
                        let __result = (|| -> ::std::result::Result<
                            (),
                            $crate::test_runner::TestCaseError,
                        > { $body ::std::result::Result::Ok(()) })();
                        match __result {
                            ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::Fail(msg),
                            ) => ::std::result::Result::Err(
                                $crate::test_runner::TestCaseError::Fail(::std::format!(
                                    "{msg}\n  inputs: {__inputs}"
                                )),
                            ),
                            other => other,
                        }
                    },
                );
            }
        )*
    };
}

/// Fails the current test case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!(
                    "assertion failed: {}", stringify!($cond)
                )),
            );
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!(
                    "assertion failed: {} — {}",
                    stringify!($cond),
                    ::std::format!($($fmt)+)
                )),
            );
        }
    };
}

/// Fails the current test case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), __l, __r
                )),
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(::std::format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                    stringify!($left), stringify!($right), __l, __r,
                    ::std::format!($($fmt)+)
                )),
            );
        }
    }};
}

/// Discards the current test case (it counts as neither pass nor failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}
